#include "nn/lstm.h"

#include <utility>

#include "util/error.h"

namespace desmine::nn {

using tensor::Transpose;

LstmStack::LstmStack(const std::string& name, std::size_t input_dim,
                     std::size_t hidden_dim, std::size_t num_layers,
                     util::Rng& rng, float dropout, float init_scale,
                     WeightStorage storage)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), dropout_(dropout) {
  DESMINE_EXPECTS(input_dim > 0 && hidden_dim > 0 && num_layers > 0,
                  "lstm dims must be > 0");
  DESMINE_EXPECTS(dropout >= 0.0f && dropout < 1.0f, "dropout in [0,1)");
  layers_.reserve(num_layers);
  for (std::size_t l = 0; l < num_layers; ++l) {
    const std::size_t in = (l == 0) ? input_dim : hidden_dim;
    Layer layer{
        Param(name + ".l" + std::to_string(l) + ".Wx", in, 4 * hidden_dim,
              storage),
        Param(name + ".l" + std::to_string(l) + ".Wh", hidden_dim,
              4 * hidden_dim, storage),
        Param(name + ".l" + std::to_string(l) + ".b", 1, 4 * hidden_dim,
              storage)};
    if (storage == WeightStorage::kOwned) {
      layer.wx.value.init_uniform(rng, init_scale);
      layer.wh.value.init_uniform(rng, init_scale);
      // Forget-gate bias starts at 1 so early training does not flush memory.
      for (std::size_t cidx = hidden_dim; cidx < 2 * hidden_dim; ++cidx) {
        layer.b.value(0, cidx) = 1.0f;
      }
    }
    layers_.push_back(std::move(layer));
  }
}

void LstmStack::begin(std::size_t batch, const LstmState* init, bool train,
                      util::Rng* dropout_rng, tensor::Workspace* workspace,
                      tensor::Precision precision) {
  DESMINE_EXPECTS(batch > 0, "lstm batch must be > 0");
  DESMINE_EXPECTS(!train || precision == tensor::Precision::kF32,
                  "int8 precision is inference-only");
  batch_ = batch;
  train_ = train;
  precision_ = precision;
  dropout_rng_ = dropout_rng;
  if (train_ && dropout_ > 0.0f) {
    DESMINE_EXPECTS(dropout_rng_ != nullptr,
                    "training with dropout needs an rng");
  }
  // A shared workspace is rewound by its owner (it may already hold live
  // sequences, e.g. the encoder's caches while the decoder begins); only the
  // private fallback arena is safe to reset here.
  ws_ = workspace != nullptr ? workspace : &own_ws_;
  if (workspace == nullptr) own_ws_.reset();
  caches_.clear();
  if (state0_.h.size() != layers_.size() || state0_.h.empty() ||
      state0_.h[0].rows() != batch) {
    state0_.h.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
    state0_.c.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  } else {
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      state0_.h[l].zero();
      state0_.c[l].zero();
    }
  }
  if (init != nullptr && !init->empty()) {
    DESMINE_EXPECTS(init->h.size() == layers_.size(), "init state layer count");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      DESMINE_EXPECTS(init->h[l].rows() == batch &&
                          init->h[l].cols() == hidden_dim_,
                      "init state shape");
      state0_.h[l] = init->h[l];
      state0_.c[l] = init->c[l];
    }
  }
}

void LstmStack::step_layer(std::size_t l, tensor::ConstMatrixView input,
                           tensor::ConstMatrixView h_prev,
                           tensor::ConstMatrixView c_prev, LayerCache& cache) {
  const std::size_t H = hidden_dim_;
  cache.i = ws_->alloc(batch_, H);
  cache.f = ws_->alloc(batch_, H);
  cache.g = ws_->alloc(batch_, H);
  cache.o = ws_->alloc(batch_, H);
  cache.c = ws_->alloc(batch_, H);
  cache.tanh_c = ws_->alloc(batch_, H);
  cache.h = ws_->alloc(batch_, H);

  // The fused pre-activation is transient: reclaim it once the gates are out.
  const tensor::Workspace::Checkpoint scratch = ws_->checkpoint();
  tensor::MatrixView z = ws_->alloc(batch_, 4 * H);
  if (precision_ == tensor::Precision::kInt8) {
    tensor::gemm_i8_accum(input, layers_[l].wx.quantized(), z);
    tensor::gemm_i8_accum(h_prev, layers_[l].wh.quantized(), z);
  } else {
    tensor::gemm(Transpose::kNo, Transpose::kNo, 1.0f, input,
                 layers_[l].wx.view(), 1.0f, z);
    tensor::gemm(Transpose::kNo, Transpose::kNo, 1.0f, h_prev,
                 layers_[l].wh.view(), 1.0f, z);
  }
  tensor::add_row_bias(z, layers_[l].b.view());

  tensor::lstm_gate_fusion(z, c_prev,
                           {cache.i, cache.f, cache.g, cache.o, cache.c,
                            cache.tanh_c, cache.h});
  ws_->rewind(scratch);
}

tensor::ConstMatrixView LstmStack::step(tensor::ConstMatrixView x_t) {
  DESMINE_EXPECTS(x_t.rows() == batch_ && x_t.cols() == input_dim_,
                  "lstm step input shape");
  const std::size_t L = layers_.size();
  const std::size_t t = caches_.size() / L;
  caches_.resize(caches_.size() + L);

  tensor::ConstMatrixView layer_in = x_t;
  for (std::size_t l = 0; l < L; ++l) {
    LayerCache& lc = cache_at(t, l);
    // Inverted dropout on the layer's (non-recurrent) input. The input is
    // copied into the workspace so it stays valid through backward() even
    // when the caller's buffer is transient.
    lc.input = ws_->alloc(layer_in.rows(), layer_in.cols());
    lc.input.copy_from(layer_in);
    if (train_ && dropout_ > 0.0f) {
      lc.mask = ws_->alloc(lc.input.rows(), lc.input.cols());
      const float keep = 1.0f - dropout_;
      for (std::size_t idx = 0; idx < lc.mask.size(); ++idx) {
        lc.mask.data()[idx] = dropout_rng_->bernoulli(keep) ? 1.0f / keep : 0.0f;
      }
      lc.input.hadamard(lc.mask);
    }
    const tensor::ConstMatrixView h_prev =
        (t == 0) ? tensor::ConstMatrixView(state0_.h[l]) : cache_at(t - 1, l).h;
    const tensor::ConstMatrixView c_prev =
        (t == 0) ? tensor::ConstMatrixView(state0_.c[l]) : cache_at(t - 1, l).c;
    step_layer(l, lc.input, h_prev, c_prev, lc);
    layer_in = lc.h;
  }
  return cache_at(t, L - 1).h;
}

void LstmStack::retain_rows(const std::vector<std::uint8_t>& frozen) {
  DESMINE_EXPECTS(!caches_.empty(), "retain_rows needs a prior step()");
  DESMINE_EXPECTS(frozen.size() == batch_, "one freeze flag per batch row");
  const std::size_t t = steps() - 1;
  const std::size_t H = hidden_dim_;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const tensor::ConstMatrixView h_prev =
        (t == 0) ? tensor::ConstMatrixView(state0_.h[l]) : cache_at(t - 1, l).h;
    const tensor::ConstMatrixView c_prev =
        (t == 0) ? tensor::ConstMatrixView(state0_.c[l]) : cache_at(t - 1, l).c;
    LayerCache& cur = cache_at(t, l);
    for (std::size_t b = 0; b < batch_; ++b) {
      if (!frozen[b]) continue;
      float* hr = cur.h.row(b);
      float* cr = cur.c.row(b);
      const float* hp = h_prev.row(b);
      const float* cp = c_prev.row(b);
      for (std::size_t k = 0; k < H; ++k) {
        hr[k] = hp[k];
        cr[k] = cp[k];
      }
    }
  }
}

LstmState LstmStack::state() const {
  DESMINE_EXPECTS(!caches_.empty() || !state0_.empty(), "no state yet");
  LstmState s;
  if (caches_.empty()) return state0_;
  const std::size_t t = steps() - 1;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    s.h.emplace_back(cache_at(t, l).h);
    s.c.emplace_back(cache_at(t, l).c);
  }
  return s;
}

tensor::ConstMatrixView LstmStack::output(std::size_t t) const {
  DESMINE_EXPECTS(t < steps(), "output step out of range");
  return cache_at(t, layers_.size() - 1).h;
}

LstmStack::BackwardResult LstmStack::backward(
    const std::vector<tensor::ConstMatrixView>& dh_top,
    const LstmState* dfinal) {
  const std::size_t T = steps();
  const std::size_t L = layers_.size();
  const std::size_t H = hidden_dim_;
  DESMINE_EXPECTS(dh_top.size() == T, "dh_top must cover every step");

  BackwardResult result;
  result.dx.assign(T, tensor::MatrixView());
  for (std::size_t t = 0; t < T; ++t) {
    result.dx[t] = ws_->alloc(batch_, input_dim_);
  }

  // Running gradients flowing backward through time, per layer. dh ping-pongs
  // between two slots (the new dh_prev must start from zero, exactly like the
  // fresh matrix the pre-arena code allocated); dc is updated in place.
  std::vector<tensor::MatrixView> dh_cur(L), dh_alt(L), dc_next(L);
  for (std::size_t l = 0; l < L; ++l) {
    dh_cur[l] = ws_->alloc(batch_, H);
    dh_alt[l] = ws_->alloc(batch_, H);
    dc_next[l] = ws_->alloc(batch_, H);
  }
  if (dfinal != nullptr && !dfinal->empty()) {
    DESMINE_EXPECTS(dfinal->h.size() == L, "dfinal layer count");
    for (std::size_t l = 0; l < L; ++l) {
      dh_cur[l] += dfinal->h[l];
      dc_next[l] += dfinal->c[l];
    }
  }

  tensor::MatrixView dz = ws_->alloc(batch_, 4 * H);
  // Gradient flowing into lower layers from the layer above at one step;
  // written at layer l, consumed at l-1, so two alternating slots suffice.
  tensor::MatrixView din_a = ws_->alloc(batch_, H);
  tensor::MatrixView din_b = ws_->alloc(batch_, H);

  for (std::size_t ti = T; ti-- > 0;) {
    tensor::MatrixView d_from_above;
    bool use_a = true;
    for (std::size_t l = L; l-- > 0;) {
      const LayerCache& lc = cache_at(ti, l);
      tensor::MatrixView dh = dh_cur[l];
      if (l == L - 1 && dh_top[ti].rows() > 0) dh += dh_top[ti];
      if (l < L - 1 && d_from_above.rows() > 0) dh += d_from_above;
      tensor::MatrixView dc = dc_next[l];

      const tensor::ConstMatrixView c_prev =
          (ti == 0) ? tensor::ConstMatrixView(state0_.c[l])
                    : cache_at(ti - 1, l).c;

      // Gate gradients -> fused dz in [i f g o] layout.
      for (std::size_t r = 0; r < batch_; ++r) {
        const float* dhr = dh.row(r);
        float* dcr = dc.row(r);
        const float* ir = lc.i.row(r);
        const float* fr = lc.f.row(r);
        const float* gr = lc.g.row(r);
        const float* orow = lc.o.row(r);
        const float* tcr = lc.tanh_c.row(r);
        const float* cpr = c_prev.row(r);
        float* dzr = dz.row(r);
        for (std::size_t k = 0; k < H; ++k) {
          const float do_ = dhr[k] * tcr[k];
          dcr[k] += dhr[k] * orow[k] * (1.0f - tcr[k] * tcr[k]);
          const float di = dcr[k] * gr[k];
          const float df = dcr[k] * cpr[k];
          const float dg = dcr[k] * ir[k];
          dzr[k] = di * ir[k] * (1.0f - ir[k]);
          dzr[H + k] = df * fr[k] * (1.0f - fr[k]);
          dzr[2 * H + k] = dg * (1.0f - gr[k] * gr[k]);
          dzr[3 * H + k] = do_ * orow[k] * (1.0f - orow[k]);
          // Cell gradient for the previous timestep.
          dcr[k] *= fr[k];
        }
      }

      // Parameter gradients.
      tensor::gemm(Transpose::kTrans, Transpose::kNo, 1.0f, lc.input, dz, 1.0f,
                   layers_[l].wx.grad);
      const tensor::ConstMatrixView h_prev =
          (ti == 0) ? tensor::ConstMatrixView(state0_.h[l])
                    : cache_at(ti - 1, l).h;
      tensor::gemm(Transpose::kTrans, Transpose::kNo, 1.0f, h_prev, dz, 1.0f,
                   layers_[l].wh.grad);
      {
        float* bg = layers_[l].b.grad.row(0);
        for (std::size_t r = 0; r < batch_; ++r) {
          const float* dzr = dz.row(r);
          for (std::size_t k = 0; k < 4 * H; ++k) bg[k] += dzr[k];
        }
      }

      // Gradient to previous hidden state.
      tensor::MatrixView dh_prev = dh_alt[l];
      tensor::gemm(Transpose::kNo, Transpose::kTrans, 1.0f, dz,
                   layers_[l].wh.view(), 0.0f, dh_prev);
      std::swap(dh_cur[l], dh_alt[l]);

      // Gradient to the layer input (dropout mask re-applied).
      tensor::MatrixView din;
      if (l == 0) {
        din = result.dx[ti];
      } else {
        din = use_a ? din_a : din_b;
        use_a = !use_a;
      }
      // dx[ti] comes from the arena pre-zeroed; the beta == 0 overwrite
      // makes the ping-pong slots equivalent.
      tensor::gemm(Transpose::kNo, Transpose::kTrans, 1.0f, dz,
                   layers_[l].wx.view(), 0.0f, din);
      if (lc.mask.rows() > 0) din.hadamard(lc.mask);
      if (l > 0) d_from_above = din;
    }
  }

  for (std::size_t l = 0; l < L; ++l) {
    result.dstate0.h.emplace_back(dh_cur[l]);
    result.dstate0.c.emplace_back(dc_next[l]);
  }
  return result;
}

LstmStack::BackwardResult LstmStack::backward(
    const std::vector<tensor::MatrixView>& dh_top, const LstmState* dfinal) {
  std::vector<tensor::ConstMatrixView> views(dh_top.begin(), dh_top.end());
  return backward(views, dfinal);
}

LstmStack::BackwardResult LstmStack::backward(
    const std::vector<tensor::Matrix>& dh_top, const LstmState* dfinal) {
  std::vector<tensor::ConstMatrixView> views;
  views.reserve(dh_top.size());
  for (const tensor::Matrix& m : dh_top) views.emplace_back(m);
  return backward(views, dfinal);
}

LstmState LstmStack::zero_state(std::size_t batch) const {
  LstmState s;
  s.h.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  s.c.assign(layers_.size(), tensor::Matrix(batch, hidden_dim_));
  return s;
}

tensor::Matrix LstmStack::infer_step(const tensor::Matrix& x_t,
                                     LstmState& state) const {
  DESMINE_EXPECTS(x_t.cols() == input_dim_, "infer_step input dim");
  DESMINE_EXPECTS(state.h.size() == layers_.size(), "infer_step state layers");
  const std::size_t B = x_t.rows();
  const std::size_t H = hidden_dim_;

  // Gate scratch for the fused activation kernel; the cell view aliases
  // state.c[l] (updated in place), which lstm_gate_fusion permits.
  tensor::Matrix gi(B, H), gf(B, H), gg(B, H), go(B, H), tanh_c(B, H);

  tensor::Matrix layer_in = x_t;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    DESMINE_EXPECTS(state.h[l].rows() == B && state.h[l].cols() == H,
                    "infer_step state shape");
    tensor::Matrix z(B, 4 * H);
    tensor::gemm(Transpose::kNo, Transpose::kNo, 1.0f, layer_in,
                 layers_[l].wx.view(), 1.0f, z);
    tensor::gemm(Transpose::kNo, Transpose::kNo, 1.0f, state.h[l],
                 layers_[l].wh.view(), 1.0f, z);
    tensor::add_row_bias(z, layers_[l].b.view());

    tensor::Matrix h(B, H);
    tensor::lstm_gate_fusion(z, state.c[l],
                             {gi.view(), gf.view(), gg.view(), go.view(),
                              state.c[l].view(), tanh_c.view(), h.view()});
    state.h[l] = h;
    layer_in = std::move(h);
  }
  return layer_in;
}

void LstmStack::register_params(ParamRegistry& reg) {
  for (auto& layer : layers_) {
    reg.add(&layer.wx);
    reg.add(&layer.wh);
    reg.add(&layer.b);
  }
}

}  // namespace desmine::nn
