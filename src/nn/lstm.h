// Multi-layer LSTM with explicit backpropagation through time.
//
// The stack is driven step by step (the seq2seq decoder must interleave
// attention between steps), caching all activations; backward() then runs
// full BPTT given per-step gradients on the top-layer outputs. Gates are
// fused into one (dim x 4H) matmul per layer per step in [i f g o] order.
// Dropout (inverted) is applied to each layer's input during training, i.e.
// to the non-recurrent connections, following Luong et al.'s setup.
#pragma once

#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace desmine::nn {

/// Hidden/cell state of every layer; each matrix is (batch x hidden).
struct LstmState {
  std::vector<tensor::Matrix> h;
  std::vector<tensor::Matrix> c;

  bool empty() const { return h.empty(); }
};

class LstmStack {
 public:
  LstmStack(const std::string& name, std::size_t input_dim,
            std::size_t hidden_dim, std::size_t num_layers, util::Rng& rng,
            float dropout = 0.0f, float init_scale = 0.1f);

  /// Reset caches and set the initial state (zero state if `init` is empty).
  /// `train` enables dropout; `dropout_rng` must outlive the sequence when
  /// training with dropout > 0.
  void begin(std::size_t batch, const LstmState* init = nullptr,
             bool train = false, util::Rng* dropout_rng = nullptr);

  /// Advance one timestep with input (batch x input_dim); returns the
  /// top-layer hidden output (batch x hidden).
  const tensor::Matrix& step(const tensor::Matrix& x_t);

  /// Number of steps taken since begin().
  std::size_t steps() const { return caches_.size(); }

  /// Current (last-step) state of all layers.
  LstmState state() const;

  /// Top-layer hidden output at step t (valid after step()).
  const tensor::Matrix& output(std::size_t t) const;

  struct BackwardResult {
    /// Gradient w.r.t. the input of each step.
    std::vector<tensor::Matrix> dx;
    /// Gradient w.r.t. the initial state passed to begin().
    LstmState dstate0;
  };

  /// Run BPTT. `dh_top[t]` is dL/d output(t); pass an empty matrix (0x0) for
  /// steps without a loss term. `dfinal`, if non-null, adds gradient on the
  /// final state (used when the encoder's last state seeds the decoder).
  /// Parameter gradients accumulate into the registry's Params.
  BackwardResult backward(const std::vector<tensor::Matrix>& dh_top,
                          const LstmState* dfinal = nullptr);

  /// Stateless inference step: advance `state` by one timestep for input
  /// `x_t` without touching the training caches (no dropout, no backward).
  /// Used by beam search, where many hypotheses each carry their own state.
  /// Returns the top-layer hidden output. `state` must have this stack's
  /// layer count and a batch matching x_t.
  tensor::Matrix infer_step(const tensor::Matrix& x_t, LstmState& state) const;

  /// Zero state for a given batch size (for seeding infer_step loops).
  LstmState zero_state(std::size_t batch) const;

  void register_params(ParamRegistry& reg);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }
  std::size_t num_layers() const { return layers_.size(); }
  float dropout() const { return dropout_; }

 private:
  struct Layer {
    Param wx;  ///< (layer_input_dim x 4H)
    Param wh;  ///< (H x 4H)
    Param b;   ///< (1 x 4H)
  };

  /// Everything one backward step needs, for one layer at one timestep.
  struct LayerCache {
    tensor::Matrix input;     ///< layer input after dropout (batch x in)
    tensor::Matrix mask;      ///< dropout mask (empty when not training)
    tensor::Matrix i, f, g, o;  ///< post-activation gates (batch x H)
    tensor::Matrix c;         ///< new cell state
    tensor::Matrix tanh_c;    ///< tanh(c)
    tensor::Matrix h;         ///< new hidden state
  };
  using StepCache = std::vector<LayerCache>;  // one entry per layer

  void step_layer(std::size_t l, const tensor::Matrix& input,
                  const tensor::Matrix& h_prev, const tensor::Matrix& c_prev,
                  LayerCache& cache);

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  float dropout_;
  std::vector<Layer> layers_;

  // Per-sequence scratch (reset by begin()).
  std::size_t batch_ = 0;
  bool train_ = false;
  util::Rng* dropout_rng_ = nullptr;
  LstmState state0_;
  std::vector<StepCache> caches_;
};

}  // namespace desmine::nn
