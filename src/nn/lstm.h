// Multi-layer LSTM with explicit backpropagation through time.
//
// The stack is driven step by step (the seq2seq decoder must interleave
// attention between steps), caching all activations; backward() then runs
// full BPTT given per-step gradients on the top-layer outputs. Gates are
// fused into one (dim x 4H) GEMM per layer per step in [i f g o] order and
// activated through the backend-dispatched tensor::lstm_gate_fusion kernel.
// Dropout (inverted) is applied to each layer's input during training, i.e.
// to the non-recurrent connections, following Luong et al.'s setup.
//
// Activations and per-timestep caches live in a tensor::Workspace: pass one
// to begin() (shared with attention/seq2seq and rewound by the owner between
// sequences) or let the stack fall back to an internal arena. After warm-up
// the sequence loop performs no heap allocation. Views returned by step()/
// output()/backward() are valid until that workspace is next rewound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace desmine::nn {

/// Hidden/cell state of every layer; each matrix is (batch x hidden).
struct LstmState {
  std::vector<tensor::Matrix> h;
  std::vector<tensor::Matrix> c;

  bool empty() const { return h.empty(); }
};

class LstmStack {
 public:
  LstmStack(const std::string& name, std::size_t input_dim,
            std::size_t hidden_dim, std::size_t num_layers, util::Rng& rng,
            float dropout = 0.0f, float init_scale = 0.1f,
            WeightStorage storage = WeightStorage::kOwned);

  /// Reset caches and set the initial state (zero state if `init` is empty).
  /// `train` enables dropout; `dropout_rng` must outlive the sequence when
  /// training with dropout > 0. `workspace`, if given, backs all caches for
  /// this sequence (the caller rewinds it between sequences; begin() never
  /// rewinds a shared workspace). With no workspace an internal arena is
  /// used and reset here. `precision` selects the weight GEMM mode for this
  /// sequence: kInt8 runs the Wx/Wh products through the quantized decode
  /// path (inference only — backward() requires an f32 forward).
  void begin(std::size_t batch, const LstmState* init = nullptr,
             bool train = false, util::Rng* dropout_rng = nullptr,
             tensor::Workspace* workspace = nullptr,
             tensor::Precision precision = tensor::Precision::kF32);

  /// Advance one timestep with input (batch x input_dim); returns the
  /// top-layer hidden output (batch x hidden).
  tensor::ConstMatrixView step(tensor::ConstMatrixView x_t);

  /// Number of steps taken since begin().
  std::size_t steps() const { return caches_.size() / layers_.size(); }

  /// Undo the most recent step() for the flagged batch rows: their h/c (all
  /// layers) are restored to the previous step's values, so a frozen row's
  /// state is exactly what it was when it froze. This is how a ragged batch
  /// is encoded in lock-step — rows past their own source length keep
  /// stepping on padding, then have the step rolled back — keeping each
  /// row's final state bit-identical to encoding it alone. Inference only:
  /// the overwritten caches make a subsequent backward() meaningless.
  void retain_rows(const std::vector<std::uint8_t>& frozen);

  /// Current (last-step) state of all layers (owned copies).
  LstmState state() const;

  /// Top-layer hidden output at step t (valid after step()).
  tensor::ConstMatrixView output(std::size_t t) const;

  struct BackwardResult {
    /// Gradient w.r.t. the input of each step (workspace-backed).
    std::vector<tensor::MatrixView> dx;
    /// Gradient w.r.t. the initial state passed to begin().
    LstmState dstate0;
  };

  /// Run BPTT. `dh_top[t]` is dL/d output(t); pass an empty view/matrix for
  /// steps without a loss term. `dfinal`, if non-null, adds gradient on the
  /// final state (used when the encoder's last state seeds the decoder).
  /// Parameter gradients accumulate into the registry's Params.
  BackwardResult backward(const std::vector<tensor::ConstMatrixView>& dh_top,
                          const LstmState* dfinal = nullptr);
  BackwardResult backward(const std::vector<tensor::MatrixView>& dh_top,
                          const LstmState* dfinal = nullptr);
  BackwardResult backward(const std::vector<tensor::Matrix>& dh_top,
                          const LstmState* dfinal = nullptr);

  /// Stateless inference step: advance `state` by one timestep for input
  /// `x_t` without touching the training caches (no dropout, no backward).
  /// Used by beam search, where many hypotheses each carry their own state.
  /// Returns the top-layer hidden output. `state` must have this stack's
  /// layer count and a batch matching x_t.
  tensor::Matrix infer_step(const tensor::Matrix& x_t, LstmState& state) const;

  /// Zero state for a given batch size (for seeding infer_step loops).
  LstmState zero_state(std::size_t batch) const;

  void register_params(ParamRegistry& reg);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }
  std::size_t num_layers() const { return layers_.size(); }
  float dropout() const { return dropout_; }

 private:
  struct Layer {
    Param wx;  ///< (layer_input_dim x 4H)
    Param wh;  ///< (H x 4H)
    Param b;   ///< (1 x 4H)
  };

  /// Everything one backward step needs, for one layer at one timestep.
  /// All views point into the sequence workspace.
  struct LayerCache {
    tensor::MatrixView input;  ///< layer input after dropout (batch x in)
    tensor::MatrixView mask;   ///< dropout mask (empty when not training)
    tensor::MatrixView i, f, g, o;  ///< post-activation gates (batch x H)
    tensor::MatrixView c;       ///< new cell state
    tensor::MatrixView tanh_c;  ///< tanh(c)
    tensor::MatrixView h;       ///< new hidden state
  };

  /// Cache of layer l at timestep t (row-major in t).
  LayerCache& cache_at(std::size_t t, std::size_t l) {
    return caches_[t * layers_.size() + l];
  }
  const LayerCache& cache_at(std::size_t t, std::size_t l) const {
    return caches_[t * layers_.size() + l];
  }

  void step_layer(std::size_t l, tensor::ConstMatrixView input,
                  tensor::ConstMatrixView h_prev,
                  tensor::ConstMatrixView c_prev, LayerCache& cache);

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  float dropout_;
  std::vector<Layer> layers_;

  // Per-sequence scratch (reset by begin()).
  std::size_t batch_ = 0;
  bool train_ = false;
  tensor::Precision precision_ = tensor::Precision::kF32;
  util::Rng* dropout_rng_ = nullptr;
  tensor::Workspace* ws_ = nullptr;
  tensor::Workspace own_ws_;
  LstmState state0_;
  std::vector<LayerCache> caches_;  ///< flat [t * L + l]
};

}  // namespace desmine::nn
