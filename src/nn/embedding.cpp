#include "nn/embedding.h"

#include <algorithm>

#include "util/error.h"

namespace desmine::nn {

Embedding::Embedding(std::size_t vocab_size, std::size_t dim, util::Rng& rng,
                     float init_scale, WeightStorage storage)
    : table_("embedding", vocab_size, dim, storage) {
  DESMINE_EXPECTS(vocab_size > 0 && dim > 0, "embedding dims must be > 0");
  if (storage == WeightStorage::kOwned) {
    table_.value.init_uniform(rng, init_scale);
  }
}

tensor::Matrix Embedding::forward(const std::vector<std::int32_t>& ids) const {
  tensor::Matrix out(ids.size(), dim());
  forward_into(ids, out);
  return out;
}

void Embedding::forward_into(const std::vector<std::int32_t>& ids,
                             tensor::MatrixView out) const {
  DESMINE_EXPECTS(out.rows() == ids.size() && out.cols() == dim(),
                  "embedding output shape");
  const tensor::ConstMatrixView table = table_.view();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto id = static_cast<std::size_t>(ids[i]);
    DESMINE_EXPECTS(ids[i] >= 0 && id < vocab_size(), "embedding id range");
    std::copy(table.row(id), table.row(id) + dim(), out.row(i));
  }
}

void Embedding::backward(const std::vector<std::int32_t>& ids,
                         tensor::ConstMatrixView grad_out) {
  DESMINE_EXPECTS(grad_out.rows() == ids.size() && grad_out.cols() == dim(),
                  "embedding backward shape");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto id = static_cast<std::size_t>(ids[i]);
    float* grow = table_.grad.row(id);
    const float* src = grad_out.row(i);
    for (std::size_t c = 0; c < dim(); ++c) grow[c] += src[c];
  }
}

}  // namespace desmine::nn
