// Scalar reference backend: the historical matrix.cpp loop bodies, moved
// here verbatim (ISSUE 10). This backend defines the numerics every other
// backend is measured against — the golden-regression tests pin its bit
// patterns, so the loop order, the av == 0 skips, and the libm calls must
// not change. With alpha == 1 the folded `alpha * arow[p]` multiplies are
// exact (1.0f * x == x), so the gemm kernels reproduce the pre-refactor
// matmul/matmul_accum/matmul_trans{A,B}_accum results bit for bit.
#include <algorithm>
#include <cmath>

#include "tensor/kernels/internal.h"

namespace desmine::tensor::kernels {

namespace {

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// i-k-j loop order keeps B and out accesses sequential, which the compiler
// auto-vectorizes well; good enough for the hidden sizes desmine uses
// (<=256).
void gemm_nn_scalar(float alpha, ConstMatrixView a, ConstMatrixView b,
                    MatrixView out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemm_tn_scalar(float alpha, ConstMatrixView a, ConstMatrixView b,
                    MatrixView out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemm_nt_scalar(float alpha, ConstMatrixView a, ConstMatrixView b,
                    MatrixView out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (std::size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
      orow[j] += alpha * dot;
    }
  }
}

// out += alpha * A^T B^T: op(A) (m x k) with A stored (k x m), op(B)
// (k x n) with B stored (n x k). p-i-j with the same av == 0 skip as the
// other accumulating variants; B^T's column access is the price of the
// fourth variant, which no hot path uses.
void gemm_tt_scalar(float alpha, ConstMatrixView a, ConstMatrixView b,
                    MatrixView out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.rows();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * b(j, p);
    }
  }
}

void axpy_scalar(float alpha, ConstMatrixView x, MatrixView y) {
  const float* xs = x.data();
  float* ys = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) ys[i] += alpha * xs[i];
}

void bias_add_scalar(MatrixView m, ConstMatrixView bias) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    const float* b = bias.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

void softmax_rows_scalar(MatrixView m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] *= inv;
  }
}

void lstm_gates_scalar(ConstMatrixView z, ConstMatrixView c_prev,
                       const LstmGateViews& out) {
  const std::size_t B = c_prev.rows();
  const std::size_t H = c_prev.cols();
  for (std::size_t r = 0; r < B; ++r) {
    const float* zr = z.row(r);
    const float* cp = c_prev.row(r);
    float* ir = out.i.row(r);
    float* fr = out.f.row(r);
    float* gr = out.g.row(r);
    float* orow = out.o.row(r);
    float* cr = out.c.row(r);
    float* tcr = out.tanh_c.row(r);
    float* hr = out.h.row(r);
    for (std::size_t k = 0; k < H; ++k) {
      ir[k] = sigmoidf(zr[k]);
      fr[k] = sigmoidf(zr[H + k]);
      gr[k] = std::tanh(zr[2 * H + k]);
      orow[k] = sigmoidf(zr[3 * H + k]);
      cr[k] = fr[k] * cp[k] + ir[k] * gr[k];
      tcr[k] = std::tanh(cr[k]);
      hr[k] = orow[k] * tcr[k];
    }
  }
}

void argmax_rows_scalar(ConstMatrixView m, std::int32_t* out) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<std::int32_t>(best);
  }
}

}  // namespace

// Shared by every backend: the dynamic per-row activation quantization of
// the int8 decode GEMM. Returns the row's dequantization scale (absmax/127)
// or 0 for an all-zero row. Integer accumulation is exact and commutative,
// so as long as backends keep the single-multiply dequant below, gemm_i8
// results are bit-identical across backends. Non-static for the sibling
// TUs.
float quantize_row_absmax(const float* arow, std::size_t k, std::int32_t* qa) {
  float absmax = 0.0f;
  for (std::size_t p = 0; p < k; ++p) {
    absmax = std::max(absmax, std::abs(arow[p]));
  }
  if (absmax == 0.0f) return 0.0f;
  const float inv = 127.0f / absmax;
  for (std::size_t p = 0; p < k; ++p) {
    const float q = arow[p] * inv;
    const float clamped = std::min(127.0f, std::max(-127.0f, q));
    qa[p] = static_cast<std::int32_t>(std::lround(clamped));
  }
  return absmax / 127.0f;
}

namespace {

// i-k-j over int32 accumulators: same memory pattern as the f32 reference
// (W rows stream sequentially), with the q == 0 skip mirroring the f32
// av == 0 skip. |q * w| <= 127² and k stays in the hundreds, so int32
// accumulation cannot overflow for any realistic model dimension.
void gemm_i8_scalar(ConstMatrixView a, const QuantizedTensor& w,
                    MatrixView out) {
  const std::size_t k = w.rows, n = w.cols;
  std::vector<std::int32_t> qa(k);
  std::vector<std::int32_t> acc(n);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float row_scale = quantize_row_absmax(a.row(i), k, qa.data());
    if (row_scale == 0.0f) continue;
    std::fill(acc.begin(), acc.end(), 0);
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t q = qa[p];
      if (q == 0) continue;
      const std::int8_t* wrow = w.data.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) acc[j] += q * wrow[j];
    }
    const float deq = row_scale * w.scale;
    float* orow = out.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      orow[j] += deq * static_cast<float>(acc[j]);
    }
  }
}

}  // namespace

const Ops& scalar_ops() {
  static const Ops ops = {
      &gemm_nn_scalar, &gemm_tn_scalar,      &gemm_nt_scalar,
      &gemm_tt_scalar, &axpy_scalar,         &bias_add_scalar,
      &softmax_rows_scalar, &lstm_gates_scalar, &argmax_rows_scalar,
      &gemm_i8_scalar,
  };
  return ops;
}

}  // namespace desmine::tensor::kernels
