// Backend dispatch table shared by the kernel TUs. Not part of the public
// surface — include tensor/kernels.h instead.
//
// Contract for every entry (shape/alias checks happen once in dispatch.cpp,
// backends may assume valid inputs):
//  * gemm_**: out += alpha * op(A) op(B). beta was already applied by the
//    dispatcher (zeroing for beta == 0), so backends only accumulate. With
//    alpha == 1 the scalar backend must reproduce the historical loop
//    bodies bit for bit, including the av == 0 skip and loop order.
//  * axpy / bias_add / softmax / argmax: bit-exact across all backends
//    (lane-parallel vectorization only; exp and row sums in scalar order).
//  * lstm_gates: out.c may alias c_prev; kScalar/kBlocked must use libm
//    transcendentals (bit-exact); kAvx2 may use vector polynomials.
//  * gemm_i8: identical int32 accumulation across backends.
#pragma once

#include "tensor/kernels.h"

namespace desmine::tensor::kernels {

struct Ops {
  // out += alpha * A B | A^T B | A B^T | A^T B^T. Effective shapes:
  // op(A) (m x k), op(B) (k x n), out (m x n).
  void (*gemm_nn)(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out);
  void (*gemm_tn)(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out);
  void (*gemm_nt)(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out);
  void (*gemm_tt)(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out);
  void (*axpy)(float alpha, ConstMatrixView x, MatrixView y);
  void (*bias_add)(MatrixView m, ConstMatrixView bias);
  void (*softmax_rows)(MatrixView m);
  void (*lstm_gates)(ConstMatrixView z, ConstMatrixView c_prev,
                     const LstmGateViews& out);
  void (*argmax_rows)(ConstMatrixView m, std::int32_t* out);
  void (*gemm_i8)(ConstMatrixView a, const QuantizedTensor& w, MatrixView out);
};

const Ops& scalar_ops();
const Ops& blocked_ops();
/// Null when this build carries no AVX2 TU (non-x86 toolchain); runtime
/// CPUID gating happens in dispatch.cpp on top of this.
const Ops* avx2_ops();

/// Shared int8 helper (defined in scalar.cpp): quantize one activation row
/// with its own absmax; returns the row's dequant scale (0 for a zero row).
float quantize_row_absmax(const float* arow, std::size_t k, std::int32_t* qa);

}  // namespace desmine::tensor::kernels
