// AVX2+FMA backend (ISSUE 10). This TU is compiled with -mavx2 -mfma (see
// src/CMakeLists.txt) on x86-64 toolchains and collapses to a stub
// elsewhere; dispatch.cpp additionally gates selection on CPUID, so the
// rest of the library stays portable baseline x86-64.
//
// Bit-compatibility contract (DESIGN.md §16): the GEMM variants and the
// gate fusion are deterministic but NOT bit-identical to the scalar
// reference — FMA contraction, register-tiled accumulation, vectorized dot
// reductions, and polynomial exp/tanh all move final-bit rounding. The
// conformance suite holds them to tight tolerances plus argmax identity.
// axpy, bias_add, and the int8 GEMM use lane-parallel mul+add only and
// remain bit-exact; softmax and argmax reuse the scalar reference outright.
//
// Workspace arena slices carry no alignment guarantee, so every vector
// memory access is unaligned (loadu/storeu).
#include "tensor/kernels/internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace desmine::tensor::kernels {

namespace {

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// ---------------------------------------------------------------------------
// Vector exp: Cephes-style degree-5 polynomial on the reduced range, exact
// power-of-two scaling via the exponent field. ~1 ulp of relative error on
// the gate-activation range, clamped so σ/tanh saturate cleanly.
inline __m256 exp256_ps(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);          // ln2 high part
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);       // ln2 low part
  const __m256 p0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 p1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 p2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 p3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 p4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 p5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, hi);
  x = _mm256_max_ps(x, lo);

  // n = round(x / ln2); r = x - n * ln2 (split constant for precision).
  __m256 n = _mm256_round_ps(_mm256_mul_ps(x, log2e),
                             _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(n, c1, x);
  r = _mm256_fnmadd_ps(n, c2, r);

  __m256 r2 = _mm256_mul_ps(r, r);
  __m256 poly = p0;
  poly = _mm256_fmadd_ps(poly, r, p1);
  poly = _mm256_fmadd_ps(poly, r, p2);
  poly = _mm256_fmadd_ps(poly, r, p3);
  poly = _mm256_fmadd_ps(poly, r, p4);
  poly = _mm256_fmadd_ps(poly, r, p5);
  poly = _mm256_fmadd_ps(poly, r2, _mm256_add_ps(r, one));

  // 2^n via the exponent field.
  __m256i ni = _mm256_cvtps_epi32(n);
  ni = _mm256_add_epi32(ni, _mm256_set1_epi32(127));
  ni = _mm256_slli_epi32(ni, 23);
  return _mm256_mul_ps(poly, _mm256_castsi256_ps(ni));
}

inline __m256 sigmoid256_ps(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = exp256_ps(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

inline __m256 tanh256_ps(__m256 x) {
  // tanh(x) = 2 σ(2x) - 1; exp's clamp saturates the far tails to ±1.
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256 s = sigmoid256_ps(_mm256_mul_ps(two, x));
  return _mm256_fmsub_ps(two, s, one);
}

inline float hsum256_ps(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// ---------------------------------------------------------------------------
// out += alpha * A B. Register-tiled: 2 rows of A x 32 columns of out live
// in 8 accumulators across the whole k loop, so out traffic is one
// load/store pair per tile and B rows are shared between the two A rows.
void gemm_nn_avx2(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t n32 = n - n % 32;

  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const float* a0 = a.row(i);
    const float* a1 = a.row(i + 1);
    float* o0 = out.row(i);
    float* o1 = out.row(i + 1);
    for (std::size_t j = 0; j < n32; j += 32) {
      __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
      __m256 acc02 = _mm256_setzero_ps(), acc03 = _mm256_setzero_ps();
      __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
      __m256 acc12 = _mm256_setzero_ps(), acc13 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const float* brow = b.row(p) + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        const __m256 av0 = _mm256_set1_ps(alpha * a0[p]);
        const __m256 av1 = _mm256_set1_ps(alpha * a1[p]);
        acc00 = _mm256_fmadd_ps(av0, b0, acc00);
        acc01 = _mm256_fmadd_ps(av0, b1, acc01);
        acc02 = _mm256_fmadd_ps(av0, b2, acc02);
        acc03 = _mm256_fmadd_ps(av0, b3, acc03);
        acc10 = _mm256_fmadd_ps(av1, b0, acc10);
        acc11 = _mm256_fmadd_ps(av1, b1, acc11);
        acc12 = _mm256_fmadd_ps(av1, b2, acc12);
        acc13 = _mm256_fmadd_ps(av1, b3, acc13);
      }
      _mm256_storeu_ps(o0 + j, _mm256_add_ps(_mm256_loadu_ps(o0 + j), acc00));
      _mm256_storeu_ps(o0 + j + 8,
                       _mm256_add_ps(_mm256_loadu_ps(o0 + j + 8), acc01));
      _mm256_storeu_ps(o0 + j + 16,
                       _mm256_add_ps(_mm256_loadu_ps(o0 + j + 16), acc02));
      _mm256_storeu_ps(o0 + j + 24,
                       _mm256_add_ps(_mm256_loadu_ps(o0 + j + 24), acc03));
      _mm256_storeu_ps(o1 + j, _mm256_add_ps(_mm256_loadu_ps(o1 + j), acc10));
      _mm256_storeu_ps(o1 + j + 8,
                       _mm256_add_ps(_mm256_loadu_ps(o1 + j + 8), acc11));
      _mm256_storeu_ps(o1 + j + 16,
                       _mm256_add_ps(_mm256_loadu_ps(o1 + j + 16), acc12));
      _mm256_storeu_ps(o1 + j + 24,
                       _mm256_add_ps(_mm256_loadu_ps(o1 + j + 24), acc13));
    }
    // Column remainder: 8-wide then scalar.
    for (std::size_t j = n32; j + 8 <= n; j += 8) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(b.row(p) + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a0[p]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a1[p]), bv, acc1);
      }
      _mm256_storeu_ps(o0 + j, _mm256_add_ps(_mm256_loadu_ps(o0 + j), acc0));
      _mm256_storeu_ps(o1 + j, _mm256_add_ps(_mm256_loadu_ps(o1 + j), acc1));
    }
    for (std::size_t j = n - n % 8; j < n; ++j) {
      float d0 = 0.0f, d1 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        d0 += a0[p] * b(p, j);
        d1 += a1[p] * b(p, j);
      }
      o0[j] += alpha * d0;
      o1[j] += alpha * d1;
    }
  }
  for (; i < m; ++i) {  // odd final row
    const float* arow = a.row(i);
    float* orow = out.row(i);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(alpha * arow[p]),
                              _mm256_loadu_ps(b.row(p) + j), acc);
      }
      _mm256_storeu_ps(orow + j,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j), acc));
    }
    for (; j < n; ++j) {
      float dot = 0.0f;
      for (std::size_t p = 0; p < k; ++p) dot += arow[p] * b(p, j);
      orow[j] += alpha * dot;
    }
  }
}

// out += alpha * A^T B, A stored (k x m). Same register tiling as gemm_nn
// with the A access transposed (a(p, i) is a strided scalar load, which the
// broadcast hides behind the FMA chain).
void gemm_tn_avx2(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    float* orow = out.row(i);
    std::size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 av = _mm256_set1_ps(alpha * a(p, i));
        const float* brow = b.row(p) + j;
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24), acc3);
      }
      _mm256_storeu_ps(orow + j,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j), acc0));
      _mm256_storeu_ps(orow + j + 8,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j + 8), acc1));
      _mm256_storeu_ps(orow + j + 16,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j + 16), acc2));
      _mm256_storeu_ps(orow + j + 24,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j + 24), acc3));
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a(p, i)),
                              _mm256_loadu_ps(b.row(p) + j), acc);
      }
      _mm256_storeu_ps(orow + j,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j), acc));
    }
    for (; j < n; ++j) {
      float dot = 0.0f;
      for (std::size_t p = 0; p < k; ++p) dot += a(p, i) * b(p, j);
      orow[j] += alpha * dot;
    }
  }
}

// out += alpha * A B^T: contiguous-row dot products, 4 B rows sharing each
// A load, lane accumulators + horizontal sum (reduction order differs from
// scalar — tolerance contract).
void gemm_nt_avx2(float alpha, ConstMatrixView a, ConstMatrixView b,
                  MatrixView out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const std::size_t k8 = k - k % 8;
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b.row(j);
      const float* b1 = b.row(j + 1);
      const float* b2 = b.row(j + 2);
      const float* b3 = b.row(j + 3);
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k8; p += 8) {
        const __m256 av = _mm256_loadu_ps(arow + p);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + p), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + p), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + p), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + p), acc3);
      }
      float d0 = hsum256_ps(acc0), d1 = hsum256_ps(acc1);
      float d2 = hsum256_ps(acc2), d3 = hsum256_ps(acc3);
      for (std::size_t p = k8; p < k; ++p) {
        d0 += arow[p] * b0[p];
        d1 += arow[p] * b1[p];
        d2 += arow[p] * b2[p];
        d3 += arow[p] * b3[p];
      }
      orow[j] += alpha * d0;
      orow[j + 1] += alpha * d1;
      orow[j + 2] += alpha * d2;
      orow[j + 3] += alpha * d3;
    }
    for (; j < n; ++j) {
      const float* brow = b.row(j);
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k8; p += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                              _mm256_loadu_ps(brow + p), acc);
      }
      float dot = hsum256_ps(acc);
      for (std::size_t p = k8; p < k; ++p) dot += arow[p] * brow[p];
      orow[j] += alpha * dot;
    }
  }
}

// Lane-parallel mul+add (no FMA): bit-exact vs the scalar reference.
void axpy_avx2(float alpha, ConstMatrixView x, MatrixView y) {
  const float* xs = x.data();
  float* ys = y.data();
  const std::size_t size = x.size();
  const __m256 av = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(xs + i));
    _mm256_storeu_ps(ys + i, _mm256_add_ps(_mm256_loadu_ps(ys + i), prod));
  }
  for (; i < size; ++i) ys[i] += alpha * xs[i];
}

// Lane-parallel add: bit-exact vs the scalar reference.
void bias_add_avx2(MatrixView m, ConstMatrixView bias) {
  const float* b = bias.row(0);
  const std::size_t n = m.cols();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    std::size_t c = 0;
    for (; c + 8 <= n; c += 8) {
      _mm256_storeu_ps(
          row + c, _mm256_add_ps(_mm256_loadu_ps(row + c),
                                 _mm256_loadu_ps(b + c)));
    }
    for (; c < n; ++c) row[c] += b[c];
  }
}

void lstm_gates_avx2(ConstMatrixView z, ConstMatrixView c_prev,
                     const LstmGateViews& out) {
  const std::size_t B = c_prev.rows();
  const std::size_t H = c_prev.cols();
  const std::size_t h8 = H - H % 8;
  for (std::size_t r = 0; r < B; ++r) {
    const float* zr = z.row(r);
    const float* cp = c_prev.row(r);
    float* ir = out.i.row(r);
    float* fr = out.f.row(r);
    float* gr = out.g.row(r);
    float* orow = out.o.row(r);
    float* cr = out.c.row(r);
    float* tcr = out.tanh_c.row(r);
    float* hr = out.h.row(r);
    std::size_t k = 0;
    for (; k < h8; k += 8) {
      const __m256 iv = sigmoid256_ps(_mm256_loadu_ps(zr + k));
      const __m256 fv = sigmoid256_ps(_mm256_loadu_ps(zr + H + k));
      const __m256 gv = tanh256_ps(_mm256_loadu_ps(zr + 2 * H + k));
      const __m256 ov = sigmoid256_ps(_mm256_loadu_ps(zr + 3 * H + k));
      const __m256 cpv = _mm256_loadu_ps(cp + k);  // before storing c: alias
      const __m256 cv =
          _mm256_fmadd_ps(fv, cpv, _mm256_mul_ps(iv, gv));
      const __m256 tcv = tanh256_ps(cv);
      const __m256 hv = _mm256_mul_ps(ov, tcv);
      _mm256_storeu_ps(ir + k, iv);
      _mm256_storeu_ps(fr + k, fv);
      _mm256_storeu_ps(gr + k, gv);
      _mm256_storeu_ps(orow + k, ov);
      _mm256_storeu_ps(cr + k, cv);
      _mm256_storeu_ps(tcr + k, tcv);
      _mm256_storeu_ps(hr + k, hv);
    }
    for (; k < H; ++k) {  // libm tail (rarely taken: H % 8 != 0)
      ir[k] = sigmoidf(zr[k]);
      fr[k] = sigmoidf(zr[H + k]);
      gr[k] = std::tanh(zr[2 * H + k]);
      orow[k] = sigmoidf(zr[3 * H + k]);
      const float cv = fr[k] * cp[k] + ir[k] * gr[k];
      cr[k] = cv;
      tcr[k] = std::tanh(cv);
      hr[k] = orow[k] * tcr[k];
    }
  }
}

// Vectorized int32 inner loop; identical integer accumulation and
// single-multiply dequant as the reference, hence bit-exact.
void gemm_i8_avx2(ConstMatrixView a, const QuantizedTensor& w,
                  MatrixView out) {
  const std::size_t k = w.rows, n = w.cols;
  std::vector<std::int32_t> qa(k);
  std::vector<std::int32_t> acc(n);
  const std::size_t n8 = n - n % 8;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float row_scale = quantize_row_absmax(a.row(i), k, qa.data());
    if (row_scale == 0.0f) continue;
    std::fill(acc.begin(), acc.end(), 0);
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t q = qa[p];
      if (q == 0) continue;
      const std::int8_t* wrow = w.data.data() + p * n;
      const __m256i qv = _mm256_set1_epi32(q);
      std::size_t j = 0;
      for (; j < n8; j += 8) {
        const __m128i w8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(wrow + j));
        const __m256i w32 = _mm256_cvtepi8_epi32(w8);
        const __m256i prod = _mm256_mullo_epi32(qv, w32);
        __m256i* accv = reinterpret_cast<__m256i*>(acc.data() + j);
        _mm256_storeu_si256(
            accv, _mm256_add_epi32(_mm256_loadu_si256(accv), prod));
      }
      for (; j < n; ++j) acc[j] += q * wrow[j];
    }
    const float deq = row_scale * w.scale;
    float* orow = out.row(i);
    const __m256 dv = _mm256_set1_ps(deq);
    std::size_t j = 0;
    for (; j < n8; j += 8) {
      const __m256 fa = _mm256_cvtepi32_ps(_mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(acc.data() + j)));
      const __m256 prod = _mm256_mul_ps(dv, fa);
      _mm256_storeu_ps(orow + j,
                       _mm256_add_ps(_mm256_loadu_ps(orow + j), prod));
    }
    for (; j < n; ++j) orow[j] += deq * static_cast<float>(acc[j]);
  }
}

}  // namespace

const Ops* avx2_ops() {
  static const Ops ops = [] {
    Ops ops = scalar_ops();  // softmax + argmax: scalar reference, bit-exact
    ops.gemm_nn = &gemm_nn_avx2;
    ops.gemm_tn = &gemm_tn_avx2;
    ops.gemm_nt = &gemm_nt_avx2;
    // gemm_tt stays scalar: the fourth variant backs no hot path.
    ops.axpy = &axpy_avx2;
    ops.bias_add = &bias_add_avx2;
    ops.lstm_gates = &lstm_gates_avx2;
    ops.gemm_i8 = &gemm_i8_avx2;
    return ops;
  }();
  return &ops;
}

}  // namespace desmine::tensor::kernels

#else  // !(__AVX2__ && __FMA__)

namespace desmine::tensor::kernels {

const Ops* avx2_ops() { return nullptr; }

}  // namespace desmine::tensor::kernels

#endif
