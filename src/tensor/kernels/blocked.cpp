// Cache-blocked scalar backend (ISSUE 10). Pure loop reordering over the
// reference kernels: every out element still accumulates its contributions
// in ascending-k order with the same mul+add arithmetic and the same
// av == 0 skips, so this backend is bit-identical to kScalar (the
// conformance suite asserts exact equality). The win is locality — a
// (KC x NC) tile of B stays hot in L1/L2 across all rows of A instead of
// streaming the whole of B once per row.
#include <algorithm>

#include "tensor/kernels/internal.h"

namespace desmine::tensor::kernels {

namespace {

// Tile sizes in floats: KC rows of B per pass, NC columns per pass.
// KC * NC * 4 bytes = 64 KiB — comfortably L2-resident next to the A rows,
// with the NC slice of `out` staying L1-resident.
constexpr std::size_t kKc = 64;
constexpr std::size_t kNc = 256;

void gemm_nn_blocked(float alpha, ConstMatrixView a, ConstMatrixView b,
                     MatrixView out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t jb = 0; jb < n; jb += kNc) {
    const std::size_t je = std::min(jb + kNc, n);
    for (std::size_t kb = 0; kb < k; kb += kKc) {
      const std::size_t ke = std::min(kb + kKc, k);
      for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        float* orow = out.row(i);
        for (std::size_t p = kb; p < ke; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (std::size_t j = jb; j < je; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm_tn_blocked(float alpha, ConstMatrixView a, ConstMatrixView b,
                     MatrixView out) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t jb = 0; jb < n; jb += kNc) {
    const std::size_t je = std::min(jb + kNc, n);
    for (std::size_t pb = 0; pb < k; pb += kKc) {
      const std::size_t pe = std::min(pb + kKc, k);
      for (std::size_t i = 0; i < m; ++i) {
        float* orow = out.row(i);
        for (std::size_t p = pb; p < pe; ++p) {
          const float av = alpha * a(p, i);
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (std::size_t j = jb; j < je; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm_nt_blocked(float alpha, ConstMatrixView a, ConstMatrixView b,
                     MatrixView out) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  // Tile over B rows so a j-tile of B (kNc rows x k) is reused across every
  // row of A. The per-(i, j) dot still runs p = 0..k sequentially, keeping
  // the reduction order — and therefore the bits — of the reference.
  for (std::size_t jb = 0; jb < n; jb += kNc) {
    const std::size_t je = std::min(jb + kNc, n);
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a.row(i);
      float* orow = out.row(i);
      for (std::size_t j = jb; j < je; ++j) {
        const float* brow = b.row(j);
        float dot = 0.0f;
        for (std::size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
        orow[j] += alpha * dot;
      }
    }
  }
}

}  // namespace

const Ops& blocked_ops() {
  static const Ops ops = [] {
    Ops ops = scalar_ops();  // axpy/bias/softmax/gates/argmax/i8: reference
    ops.gemm_nn = &gemm_nn_blocked;
    ops.gemm_tn = &gemm_tn_blocked;
    ops.gemm_nt = &gemm_nt_blocked;
    return ops;
  }();
  return ops;
}

}  // namespace desmine::tensor::kernels
