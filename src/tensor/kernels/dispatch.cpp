// Kernel dispatch (ISSUE 10): backend selection state and the public,
// shape-checked entry points declared in tensor/matrix.h and
// tensor/kernels.h. Backends (scalar.cpp / blocked.cpp / avx2.cpp) receive
// pre-validated views and only accumulate; alpha folding and beta handling
// live here so every backend sees identical semantics.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <string>

#include "tensor/kernels/internal.h"
#include "util/error.h"

namespace desmine::tensor {

namespace kernels {

namespace {

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Ops* ops_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &scalar_ops();
    case Backend::kBlocked:
      return &blocked_ops();
    case Backend::kAvx2:
      return avx2_ops();
  }
  return nullptr;
}

// Best available backend ignoring the environment override.
Backend best_backend() {
  return backend_available(Backend::kAvx2) ? Backend::kAvx2 : Backend::kBlocked;
}

// Startup selection: DESMINE_KERNELS when set, else best available.
Backend detect_backend() {
  const char* env = std::getenv("DESMINE_KERNELS");
  if (env != nullptr && *env != '\0') {
    Backend b{};
    DESMINE_EXPECTS(parse_backend(env, &b),
                    std::string("DESMINE_KERNELS: unknown backend '") + env +
                        "' (expected scalar|blocked|avx2)");
    DESMINE_EXPECTS(backend_available(b),
                    std::string("DESMINE_KERNELS: backend '") + env +
                        "' is not available on this build/CPU");
    return b;
  }
  return best_backend();
}

// The active dispatch table. Relaxed loads are fine: selection is documented
// as startup/between-batches only, and the pointer is always valid.
std::atomic<const Ops*> g_ops{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};
std::mutex g_init_mutex;

const Ops& active_ops() {
  const Ops* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    std::lock_guard<std::mutex> lock(g_init_mutex);
    ops = g_ops.load(std::memory_order_acquire);
    if (ops == nullptr) {
      const Backend b = detect_backend();
      ops = ops_for(b);
      g_backend.store(b, std::memory_order_release);
      g_ops.store(ops, std::memory_order_release);
    }
  }
  return *ops;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kBlocked:
      return "blocked";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, Backend* out) {
  if (name == "scalar") {
    *out = Backend::kScalar;
  } else if (name == "blocked") {
    *out = Backend::kBlocked;
  } else if (name == "avx2") {
    *out = Backend::kAvx2;
  } else {
    return false;
  }
  return true;
}

bool backend_available(Backend b) {
  if (b == Backend::kAvx2) {
    return avx2_ops() != nullptr && cpu_has_avx2_fma();
  }
  return true;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out{Backend::kScalar, Backend::kBlocked};
  if (backend_available(Backend::kAvx2)) out.push_back(Backend::kAvx2);
  return out;
}

Backend active_backend() {
  active_ops();  // force startup detection
  return g_backend.load(std::memory_order_acquire);
}

void set_backend(Backend b) {
  DESMINE_EXPECTS(backend_available(b),
                  std::string("kernel backend '") + backend_name(b) +
                      "' is not available on this build/CPU");
  std::lock_guard<std::mutex> lock(g_init_mutex);
  g_backend.store(b, std::memory_order_release);
  g_ops.store(ops_for(b), std::memory_order_release);
}

void select_backend(std::string_view choice) {
  if (choice == "auto") {
    std::lock_guard<std::mutex> lock(g_init_mutex);
    const Backend b = detect_backend();
    g_backend.store(b, std::memory_order_release);
    g_ops.store(ops_for(b), std::memory_order_release);
    return;
  }
  Backend b{};
  DESMINE_EXPECTS(parse_backend(choice, &b),
                  std::string("unknown kernel backend '") +
                      std::string(choice) +
                      "' (expected auto|scalar|blocked|avx2)");
  set_backend(b);
}

Precision apply_kernel_config(const KernelConfig& config) {
  select_backend(config.kernels);
  Precision p{};
  DESMINE_EXPECTS(parse_precision(config.precision, &p),
                  std::string("unknown precision '") + config.precision +
                      "' (expected f32|int8)");
  return p;
}

}  // namespace kernels

const char* precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "f32";
}

bool parse_precision(std::string_view name, Precision* out) {
  if (name == "f32") {
    *out = Precision::kF32;
  } else if (name == "int8") {
    *out = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Public entry points. Validation happens once here; backends assume valid
// shapes.

void gemm(Transpose trans_a, Transpose trans_b, float alpha, ConstMatrixView a,
          ConstMatrixView b, float beta, MatrixView out) {
  const bool ta = trans_a == Transpose::kTrans;
  const bool tb = trans_b == Transpose::kTrans;
  const std::size_t am = ta ? a.cols() : a.rows();
  const std::size_t ak = ta ? a.rows() : a.cols();
  const std::size_t bk = tb ? b.cols() : b.rows();
  const std::size_t bn = tb ? b.rows() : b.cols();
  DESMINE_EXPECTS(ak == bk, "inner dimensions must agree");
  DESMINE_EXPECTS(out.rows() == am && out.cols() == bn,
                  "output shape mismatch");

  if (beta == 0.0f) {
    out.zero();  // overwrite semantics: prior NaN/Inf never leak through
  } else if (beta != 1.0f) {
    float* os = out.data();
    for (std::size_t i = 0; i < out.size(); ++i) os[i] *= beta;
  }
  if (alpha == 0.0f || ak == 0) return;

  const kernels::Ops& ops = kernels::active_ops();
  if (!ta && !tb) {
    ops.gemm_nn(alpha, a, b, out);
  } else if (ta && !tb) {
    ops.gemm_tn(alpha, a, b, out);
  } else if (!ta && tb) {
    ops.gemm_nt(alpha, a, b, out);
  } else {
    ops.gemm_tt(alpha, a, b, out);
  }
}

void add_row_bias(MatrixView m, ConstMatrixView bias) {
  DESMINE_EXPECTS(bias.rows() == 1 && bias.cols() == m.cols(),
                  "bias must be 1 x cols");
  kernels::active_ops().bias_add(m, bias);
}

void axpy(float alpha, ConstMatrixView x, MatrixView y) {
  DESMINE_EXPECTS(x.same_shape(y), "axpy shape mismatch");
  kernels::active_ops().axpy(alpha, x, y);
}

void softmax_rows(MatrixView m) {
  kernels::active_ops().softmax_rows(m);
}

void lstm_gate_fusion(ConstMatrixView z, ConstMatrixView c_prev,
                      const LstmGateViews& out) {
  const std::size_t B = c_prev.rows();
  const std::size_t H = c_prev.cols();
  DESMINE_EXPECTS(z.rows() == B && z.cols() == 4 * H,
                  "gate pre-activation must be batch x 4H");
  DESMINE_EXPECTS(out.i.rows() == B && out.i.cols() == H &&
                      out.i.same_shape(out.f) && out.i.same_shape(out.g) &&
                      out.i.same_shape(out.o) && out.i.same_shape(out.c) &&
                      out.i.same_shape(out.tanh_c) && out.i.same_shape(out.h),
                  "gate outputs must all be batch x H");
  kernels::active_ops().lstm_gates(z, c_prev, out);
}

void argmax_rows(ConstMatrixView m, std::int32_t* out) {
  DESMINE_EXPECTS(m.cols() > 0, "argmax over empty rows");
  kernels::active_ops().argmax_rows(m, out);
}

QuantizedTensor quantize_absmax(ConstMatrixView m) {
  QuantizedTensor q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.data.resize(m.size());
  float absmax = 0.0f;
  const float* src = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    absmax = std::max(absmax, std::abs(src[i]));
  }
  if (absmax == 0.0f) {
    q.scale = 1.0f;
    return q;  // data already zero-filled by resize
  }
  q.scale = absmax / 127.0f;
  const float inv = 127.0f / absmax;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const float v = src[i] * inv;
    const float clamped = std::min(127.0f, std::max(-127.0f, v));
    q.data[i] = static_cast<std::int8_t>(std::lround(clamped));
  }
  return q;
}

void gemm_i8_accum(ConstMatrixView a, const QuantizedTensor& w,
                   MatrixView out) {
  DESMINE_EXPECTS(a.cols() == w.rows, "inner dimensions must agree");
  DESMINE_EXPECTS(out.rows() == a.rows() && out.cols() == w.cols,
                  "output shape mismatch");
  DESMINE_EXPECTS(w.data.size() == w.rows * w.cols,
                  "quantized tensor storage mismatch");
  if (a.cols() == 0) return;
  kernels::active_ops().gemm_i8(a, w, out);
}

}  // namespace desmine::tensor
