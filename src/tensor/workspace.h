// Bump-pointer arena for hot-path scratch and per-timestep caches.
//
// A Workspace hands out zero-initialized MatrixViews from a list of large
// chunks. Allocation is a pointer bump (plus a memset of the slice, which
// preserves the zero-init semantics owned Matrix buffers had before the
// ISSUE 4 refactor); deallocation is wholesale via checkpoint/rewind, which
// never returns memory to the OS. After a warm-up pass has grown the arena
// to its high-water mark, training and inference allocate nothing.
//
// Lifetime rule: a view is valid until the first rewind()/reset() to a
// checkpoint at or before its allocation. Layers that interleave persistent
// caches with transient scratch allocate the caches first, checkpoint, then
// allocate scratch and rewind to the checkpoint when the step is done.
//
// Workspaces are single-threaded by design; concurrent phases (miner pair
// training, detector edge scoring) use one thread_local workspace per pool
// thread. Process-wide traffic is reported through obs::metrics() as the
// `tensor.workspace.bytes_peak` gauge (max over all workspaces ever) and the
// `tensor.workspace.rewinds` counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace desmine::tensor {

class Workspace {
 public:
  /// Position marker; only valid for rewinding the workspace it came from,
  /// and only backwards (to a state at or before the checkpoint).
  struct Checkpoint {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  struct Stats {
    std::size_t bytes_reserved = 0;  ///< total capacity across chunks
    std::size_t bytes_peak = 0;      ///< high-water mark of live bytes
    std::uint64_t rewinds = 0;
    std::uint64_t grows = 0;  ///< chunk allocations (0 after warm-up)
  };

  Workspace() = default;
  explicit Workspace(std::size_t initial_bytes) { reserve(initial_bytes); }
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Zero-initialized rows x cols slice. Grows the arena if needed.
  MatrixView alloc(std::size_t rows, std::size_t cols);

  /// Zero-initialized flat slice of `count` floats.
  float* alloc_floats(std::size_t count);

  Checkpoint checkpoint() const { return Checkpoint{chunk_, used_}; }

  /// Drop every allocation made after `cp`; capacity is retained.
  void rewind(Checkpoint cp);

  /// Drop everything; capacity is retained.
  void reset() { rewind(Checkpoint{}); }

  /// Ensure at least `bytes` of total capacity (one contiguous extra chunk
  /// if short). Call before a hot loop to avoid growth inside it.
  void reserve(std::size_t bytes);

  Stats stats() const;
  std::size_t bytes_used() const;

 private:
  struct Chunk {
    std::unique_ptr<float[]> data;
    std::size_t capacity = 0;  ///< in floats
  };

  float* bump(std::size_t count);

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  ///< current chunk index
  std::size_t used_ = 0;   ///< floats used in current chunk
  std::size_t floats_before_ = 0;  ///< floats in chunks before chunk_
  Stats stats_;
};

}  // namespace desmine::tensor
