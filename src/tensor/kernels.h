// Runtime-dispatched compute-kernel backend (ISSUE 10, DESIGN.md §16).
//
// Every dense kernel in the numeric stack — GEMM in all four transpose
// variants (tensor::gemm in matrix.h), axpy, row bias, row softmax, the
// fused LSTM gate activation, greedy argmax — routes through one dispatch
// table selected at process startup from three backends:
//
//  * kScalar  — the reference loops, bit-exact and pinned by the golden-
//               regression tests. Always available.
//  * kBlocked — cache-blocked reorderings of the same loops. Preserves the
//               per-element accumulation order, so it is bit-identical to
//               kScalar. Always available.
//  * kAvx2    — AVX2+FMA intrinsics (vectorized GEMM, polynomial exp/tanh
//               in the gate fusion). Compiled in only when the toolchain
//               targets x86-64, selected only when CPUID reports AVX2+FMA.
//               Deterministic, but FMA contraction and vector reductions
//               change final-bit rounding vs the scalar reference; axpy,
//               bias, softmax, and argmax remain bit-exact even here.
//
// Selection precedence: explicit set_backend()/select_backend() (config key
// `tensor.kernels`, `--kernels` flag) > the DESMINE_KERNELS environment
// variable (scalar|blocked|avx2) > CPUID auto-detection (best available).
//
// On top of the f32 seam sits the int8 inference path: per-tensor absmax
// quantization (QuantizedTensor, materialized lazily by nn::Param) and a
// dynamic-activation int8 GEMM for serve-side greedy decode, accepted by
// score tolerance + argmax-decode identity against the f32 reference.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/matrix.h"

namespace desmine::tensor {

/// Numeric mode of an inference decode: full-precision f32 kernels or the
/// int8 quantized-weight path (weights per-tensor absmax, activations
/// quantized per row on the fly, int32 accumulation). Training is always
/// f32; kInt8 applies only to forward/decode weight GEMMs.
enum class Precision : std::uint8_t { kF32, kInt8 };

/// "f32" / "int8".
const char* precision_name(Precision p);
/// Parse a precision name; returns false (and leaves *out alone) on an
/// unknown name.
bool parse_precision(std::string_view name, Precision* out);

/// A per-tensor absmax int8 quantization of a row-major f32 matrix:
/// x ≈ data[r * cols + c] * scale, scale = absmax / 127 (scale == 1 for an
/// all-zero tensor). Values are symmetric in [-127, 127].
struct QuantizedTensor {
  std::size_t rows = 0;
  std::size_t cols = 0;
  float scale = 1.0f;
  std::vector<std::int8_t> data;
};

/// Quantize m with the per-tensor absmax scheme above.
QuantizedTensor quantize_absmax(ConstMatrixView m);

/// out += A * dequant(Wq), the int8 decode GEMM: each row of A is quantized
/// on the fly with its own absmax scale, products accumulate in int32, and
/// the result is dequantized by (row_scale * w.scale). Shapes as gemm_nn:
/// (m x k) * (k x n) -> (m x n). Backend-dispatched (the AVX2 backend
/// vectorizes the integer inner loop); every backend computes the identical
/// int32 accumulation, so results differ only in the final dequantizing
/// multiply-accumulate order — in practice bit-identical across backends.
void gemm_i8_accum(ConstMatrixView a, const QuantizedTensor& w,
                   MatrixView out);

/// Output views of the fused LSTM gate activation, all (batch x H).
struct LstmGateViews {
  MatrixView i, f, g, o;  ///< post-activation gates
  MatrixView c;           ///< new cell state (may alias c_prev)
  MatrixView tanh_c;      ///< tanh(c)
  MatrixView h;           ///< new hidden state
};

/// Fused LSTM gate activation over a (batch x 4H) pre-activation z in
/// [i f g o] layout: i = σ(z₀), f = σ(z₁), g = tanh(z₂), o = σ(z₃),
/// c = f ⊙ c_prev + i ⊙ g, tanh_c = tanh(c), h = o ⊙ tanh_c.
/// `out.c` may alias `c_prev` (stateless inference steps update the cell in
/// place). Scalar and blocked use libm exp/tanh (bit-exact); AVX2 uses
/// polynomial vector transcendentals (≈1e-7 relative, tolerance contract).
void lstm_gate_fusion(ConstMatrixView z, ConstMatrixView c_prev,
                      const LstmGateViews& out);

/// Row-wise argmax (greedy decode step): strict `>` comparison, first
/// maximum wins. `out` must hold m.rows() slots. Bit-exact (identical tie
/// breaking) across every backend.
void argmax_rows(ConstMatrixView m, std::int32_t* out);

namespace kernels {

/// The three compute backends, in increasing order of speed.
enum class Backend : std::uint8_t { kScalar, kBlocked, kAvx2 };

/// "scalar" / "blocked" / "avx2".
const char* backend_name(Backend b);
/// Parse a backend name; returns false (and leaves *out alone) on an
/// unknown name.
bool parse_backend(std::string_view name, Backend* out);

/// True when `b` can run on this build + CPU (kScalar/kBlocked always;
/// kAvx2 only when compiled in and CPUID reports AVX2+FMA).
bool backend_available(Backend b);

/// Every available backend, scalar first.
std::vector<Backend> available_backends();

/// The backend all dispatched kernels currently use. Initialized on first
/// use: DESMINE_KERNELS when set (an unavailable or unknown value throws),
/// else the best available backend.
Backend active_backend();

/// Select `b` for all subsequent dispatched kernels. Throws
/// PreconditionError when `b` is unavailable. Not synchronized with
/// in-flight kernels: select at startup or between batches, not mid-decode.
void set_backend(Backend b);

/// Apply a config/CLI choice: "auto" re-runs the startup detection (env
/// override, then best available); "scalar" | "blocked" | "avx2" select
/// that backend. Throws PreconditionError on unknown or unavailable names.
void select_backend(std::string_view choice);

/// Operator-facing kernel settings as carried by io::RunConfig's `tensor`
/// section and the --kernels/--precision flags.
struct KernelConfig {
  std::string kernels = "auto";   ///< auto | scalar | blocked | avx2
  std::string precision = "f32";  ///< f32 | int8
};

/// Validate and apply `config.kernels` (select_backend) and return the
/// parsed decode precision. Throws PreconditionError naming the offending
/// value on an unknown or unavailable setting.
Precision apply_kernel_config(const KernelConfig& config);

}  // namespace kernels

}  // namespace desmine::tensor
