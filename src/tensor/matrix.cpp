#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace desmine::tensor {

Matrix::Matrix(ConstMatrixView view)
    : rows_(view.rows()),
      cols_(view.cols()),
      data_(view.data(), view.data() + view.size()) {}

Matrix::Matrix(MatrixView view) : Matrix(ConstMatrixView(view)) {}

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  DESMINE_EXPECTS(!rows.empty(), "from_rows needs at least one row");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    DESMINE_EXPECTS(rows[r].size() == m.cols_, "ragged rows in from_rows");
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

MatrixView Matrix::view() { return MatrixView(data(), rows_, cols_); }
ConstMatrixView Matrix::view() const {
  return ConstMatrixView(data(), rows_, cols_);
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::init_uniform(util::Rng& rng, float scale) {
  for (float& v : data_) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
}

void Matrix::init_normal(util::Rng& rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
}

Matrix& Matrix::operator+=(ConstMatrixView other) {
  MatrixView(*this) += other;
  return *this;
}

Matrix& Matrix::operator-=(ConstMatrixView other) {
  DESMINE_EXPECTS(view().same_shape(other), "shape mismatch in -=");
  const float* os = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= os[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Matrix& Matrix::hadamard(ConstMatrixView other) {
  MatrixView(*this).hadamard(other);
  return *this;
}

void Matrix::apply(const std::function<float(float)>& f) {
  for (float& v : data_) v = f(v);
}

float Matrix::sum() const {
  float s = 0.0f;
  for (float v : data_) s += v;
  return s;
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

void MatrixView::fill(float value) const {
  std::fill(data_, data_ + size(), value);
}

void MatrixView::copy_from(ConstMatrixView src) const {
  DESMINE_EXPECTS(same_shape(src), "shape mismatch in copy_from");
  std::copy(src.data(), src.data() + src.size(), data_);
}

const MatrixView& MatrixView::operator+=(ConstMatrixView other) const {
  DESMINE_EXPECTS(same_shape(other), "shape mismatch in +=");
  const float* os = other.data();
  for (std::size_t i = 0; i < size(); ++i) data_[i] += os[i];
  return *this;
}

const MatrixView& MatrixView::hadamard(ConstMatrixView other) const {
  DESMINE_EXPECTS(same_shape(other), "shape mismatch in hadamard");
  const float* os = other.data();
  for (std::size_t i = 0; i < size(); ++i) data_[i] *= os[i];
  return *this;
}

void MatrixView::apply(const std::function<float(float)>& f) const {
  for (std::size_t i = 0; i < size(); ++i) data_[i] = f(data_[i]);
}

namespace {

void check_matmul_shapes(std::size_t am, std::size_t ak, std::size_t bk,
                         std::size_t bn, MatrixView out) {
  DESMINE_EXPECTS(ak == bk, "inner dimensions must agree");
  DESMINE_EXPECTS(out.rows() == am && out.cols() == bn,
                  "output shape mismatch");
}

}  // namespace

void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  out.zero();
  matmul_accum(a, b, out);
}

// i-k-j loop order keeps B and out accesses sequential, which the compiler
// auto-vectorizes well; good enough for the hidden sizes desmine uses (<=256).
void matmul_accum(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  check_matmul_shapes(a.rows(), a.cols(), b.rows(), b.cols(), out);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_transA_accum(ConstMatrixView a, ConstMatrixView b,
                         MatrixView out) {
  check_matmul_shapes(a.cols(), a.rows(), b.rows(), b.cols(), out);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_transB_accum(ConstMatrixView a, ConstMatrixView b,
                         MatrixView out) {
  check_matmul_shapes(a.rows(), a.cols(), b.cols(), b.rows(), out);
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (std::size_t p = 0; p < k; ++p) dot += arow[p] * brow[p];
      orow[j] += dot;
    }
  }
}

void add_row_bias(MatrixView m, ConstMatrixView bias) {
  DESMINE_EXPECTS(bias.rows() == 1 && bias.cols() == m.cols(),
                  "bias must be 1 x cols");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    const float* b = bias.row(0);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

void axpy(float alpha, ConstMatrixView x, MatrixView y) {
  DESMINE_EXPECTS(x.same_shape(y), "axpy shape mismatch");
  const float* xs = x.data();
  float* ys = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) ys[i] += alpha * xs[i];
}

void softmax_rows(MatrixView m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] *= inv;
  }
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) os << ", ";
      os << m(r, c);
    }
    os << "]";
  }
  return os << "]";
}

}  // namespace desmine::tensor
