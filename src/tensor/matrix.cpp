#include "tensor/matrix.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace desmine::tensor {

Matrix::Matrix(ConstMatrixView view)
    : rows_(view.rows()),
      cols_(view.cols()),
      data_(view.data(), view.data() + view.size()) {}

Matrix::Matrix(MatrixView view) : Matrix(ConstMatrixView(view)) {}

Matrix Matrix::from_rows(const std::vector<std::vector<float>>& rows) {
  DESMINE_EXPECTS(!rows.empty(), "from_rows needs at least one row");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    DESMINE_EXPECTS(rows[r].size() == m.cols_, "ragged rows in from_rows");
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

MatrixView Matrix::view() { return MatrixView(data(), rows_, cols_); }
ConstMatrixView Matrix::view() const {
  return ConstMatrixView(data(), rows_, cols_);
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::init_uniform(util::Rng& rng, float scale) {
  for (float& v : data_) {
    v = static_cast<float>(rng.uniform(-scale, scale));
  }
}

void Matrix::init_normal(util::Rng& rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
}

Matrix& Matrix::operator+=(ConstMatrixView other) {
  MatrixView(*this) += other;
  return *this;
}

Matrix& Matrix::operator-=(ConstMatrixView other) {
  DESMINE_EXPECTS(view().same_shape(other), "shape mismatch in -=");
  const float* os = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= os[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Matrix& Matrix::hadamard(ConstMatrixView other) {
  MatrixView(*this).hadamard(other);
  return *this;
}

void Matrix::apply(const std::function<float(float)>& f) {
  for (float& v : data_) v = f(v);
}

float Matrix::sum() const {
  float s = 0.0f;
  for (float v : data_) s += v;
  return s;
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

void MatrixView::fill(float value) const {
  std::fill(data_, data_ + size(), value);
}

void MatrixView::copy_from(ConstMatrixView src) const {
  DESMINE_EXPECTS(same_shape(src), "shape mismatch in copy_from");
  std::copy(src.data(), src.data() + src.size(), data_);
}

const MatrixView& MatrixView::operator+=(ConstMatrixView other) const {
  DESMINE_EXPECTS(same_shape(other), "shape mismatch in +=");
  const float* os = other.data();
  for (std::size_t i = 0; i < size(); ++i) data_[i] += os[i];
  return *this;
}

const MatrixView& MatrixView::hadamard(ConstMatrixView other) const {
  DESMINE_EXPECTS(same_shape(other), "shape mismatch in hadamard");
  const float* os = other.data();
  for (std::size_t i = 0; i < size(); ++i) data_[i] *= os[i];
  return *this;
}

void MatrixView::apply(const std::function<float(float)>& f) const {
  for (std::size_t i = 0; i < size(); ++i) data_[i] = f(data_[i]);
}

// The dense kernels (gemm, add_row_bias, axpy, softmax_rows) live in
// tensor/kernels/dispatch.cpp behind the runtime backend dispatch.

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) os << ", ";
      os << m(r, c);
    }
    os << "]";
  }
  return os << "]";
}

}  // namespace desmine::tensor
