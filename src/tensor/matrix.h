// Row-major single-precision matrix kernel.
//
// This is the numeric substrate for desmine::nn. It deliberately stays small:
// dense f32 storage, a cache-blocked GEMM with transpose variants, and the
// elementwise helpers the LSTM/attention layers need. Vectors are 1xN or Nx1
// matrices; there is no broadcasting beyond the row-bias helper.
//
// Two storage flavours share one kernel path (ISSUE 4):
//  * Matrix            — owning, heap-backed (parameters, long-lived state);
//  * MatrixView /      — non-owning windows over any row-major float block,
//    ConstMatrixView     typically a Workspace arena slice (activations,
//                        per-timestep caches, gradients in the hot path).
// All kernels (gemm variants, axpy, softmax, row bias) take views; an owned
// Matrix converts implicitly, so call sites are agnostic to where the bytes
// live. Views never allocate and never outlive their backing storage — see
// DESIGN.md §10 for the aliasing and lifetime rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace desmine::tensor {

class MatrixView;
class ConstMatrixView;

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Deep copy of a view (implicit so view-returning hot paths interoperate
  /// with owned storage at call sites that need to keep the values). The
  /// MatrixView overload exists because two user conversions
  /// (MatrixView -> ConstMatrixView -> Matrix) would not chain implicitly.
  Matrix(ConstMatrixView view);  // NOLINT(google-explicit-constructor)
  Matrix(MatrixView view);       // NOLINT(google-explicit-constructor)

  /// Build from nested initializer data (row major). Rows must be equal
  /// length.
  static Matrix from_rows(const std::vector<std::vector<float>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    DESMINE_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    DESMINE_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Non-owning views of this matrix (valid while the matrix lives and is
  /// not resized).
  MatrixView view();
  ConstMatrixView view() const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Uniform init in [-scale, scale] (classic NMT init).
  void init_uniform(util::Rng& rng, float scale);
  /// Gaussian init with the given stddev.
  void init_normal(util::Rng& rng, float stddev);

  Matrix& operator+=(ConstMatrixView other);
  Matrix& operator-=(ConstMatrixView other);
  Matrix& operator*=(float scalar);

  /// Elementwise (Hadamard) product into this.
  Matrix& hadamard(ConstMatrixView other);

  /// Apply f to every element in place.
  void apply(const std::function<float(float)>& f);

  /// Sum of all elements.
  float sum() const;
  /// Sum of squared elements (for gradient-norm clipping).
  double squared_norm() const;

  /// Transposed copy.
  Matrix transposed() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Mutable non-owning window over a contiguous row-major float block. A
/// default-constructed view is empty (rows == cols == 0, null data) and is
/// how the nn layers mark "no value here" (e.g. steps without a loss term).
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(float* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ * cols_ == 0; }

  float& at(std::size_t r, std::size_t c) const {
    DESMINE_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  float& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() const { return data_; }
  float* row(std::size_t r) const { return data_ + r * cols_; }

  void fill(float value) const;
  void zero() const { fill(0.0f); }

  /// Copy the values of an equal-shaped source into this view.
  void copy_from(ConstMatrixView src) const;

  const MatrixView& operator+=(ConstMatrixView other) const;
  const MatrixView& hadamard(ConstMatrixView other) const;

  /// Apply f to every element in place.
  void apply(const std::function<float(float)>& f) const;

  bool same_shape(ConstMatrixView other) const;

 private:
  float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Read-only counterpart of MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const float* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ * cols_ == 0; }

  float at(std::size_t r, std::size_t c) const {
    DESMINE_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const float* data() const { return data_; }
  const float* row(std::size_t r) const { return data_ + r * cols_; }

  bool same_shape(ConstMatrixView other) const {
    return rows_ == other.rows() && cols_ == other.cols();
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

inline bool MatrixView::same_shape(ConstMatrixView other) const {
  return rows_ == other.rows() && cols_ == other.cols();
}

/// Transpose selector for tensor::gemm (BLAS-style, applied logically — the
/// storage is never shuffled).
enum class Transpose : std::uint8_t { kNo, kTrans };

/// The single GEMM entry point (ISSUE 10): out = alpha * op(A) op(B) +
/// beta * out, where op(X) is X or X^T per the Transpose selectors.
///
/// Shapes: op(A) is (m x k), op(B) is (k x n), out is (m x n); the inner
/// dimensions must agree. `out` may not alias A or B. beta == 0 overwrites
/// out (it is zeroed first, so prior NaN/Inf never leak through); beta == 1
/// accumulates. The call dispatches to the kernel backend selected at
/// startup (tensor/kernels.h): the scalar backend is the bit-exact golden
/// reference, the blocked backend is bit-identical to it, and the AVX2+FMA
/// backend is deterministic but may differ in final-bit rounding (see
/// DESIGN.md §16 for the per-backend bit-compatibility contract).
void gemm(Transpose trans_a, Transpose trans_b, float alpha, ConstMatrixView a,
          ConstMatrixView b, float beta, MatrixView out);

/// Add a 1 x cols bias row to every row of m. Backend-dispatched; bit-exact
/// across every f32 backend.
void add_row_bias(MatrixView m, ConstMatrixView bias);

/// y += alpha * x (flat AXPY over equal-shaped matrices). Backend-
/// dispatched; bit-exact across every f32 backend.
void axpy(float alpha, ConstMatrixView x, MatrixView y);

/// Row-wise softmax in place. Backend-dispatched; bit-exact across every
/// f32 backend (exp and the row sum always run in scalar reference order).
void softmax_rows(MatrixView m);

// --- Deprecated pre-gemm entry points (ISSUE 10) -------------------------
// One release of source compatibility for the four ad-hoc matmul free
// functions; every in-tree call site now uses tensor::gemm directly.

/// out = A * B. Shapes: (m x k) * (k x n) -> (m x n).
[[deprecated("use tensor::gemm(Transpose::kNo, Transpose::kNo, 1, a, b, 0, out)")]]
inline void matmul(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  gemm(Transpose::kNo, Transpose::kNo, 1.0f, a, b, 0.0f, out);
}

/// out += A * B.
[[deprecated("use tensor::gemm(Transpose::kNo, Transpose::kNo, 1, a, b, 1, out)")]]
inline void matmul_accum(ConstMatrixView a, ConstMatrixView b,
                         MatrixView out) {
  gemm(Transpose::kNo, Transpose::kNo, 1.0f, a, b, 1.0f, out);
}

/// out += A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
[[deprecated("use tensor::gemm(Transpose::kTrans, Transpose::kNo, 1, a, b, 1, out)")]]
inline void matmul_transA_accum(ConstMatrixView a, ConstMatrixView b,
                                MatrixView out) {
  gemm(Transpose::kTrans, Transpose::kNo, 1.0f, a, b, 1.0f, out);
}

/// out += A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
[[deprecated("use tensor::gemm(Transpose::kNo, Transpose::kTrans, 1, a, b, 1, out)")]]
inline void matmul_transB_accum(ConstMatrixView a, ConstMatrixView b,
                                MatrixView out) {
  gemm(Transpose::kNo, Transpose::kTrans, 1.0f, a, b, 1.0f, out);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace desmine::tensor
