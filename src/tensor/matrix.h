// Row-major single-precision matrix kernel.
//
// This is the numeric substrate for desmine::nn. It deliberately stays small:
// dense f32 storage, a cache-blocked GEMM with transpose variants, and the
// elementwise helpers the LSTM/attention layers need. Vectors are 1xN or Nx1
// matrices; there is no broadcasting beyond the row-bias helper.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace desmine::tensor {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Build from nested initializer data (row major). Rows must be equal
  /// length.
  static Matrix from_rows(const std::vector<std::vector<float>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    DESMINE_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    DESMINE_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Uniform init in [-scale, scale] (classic NMT init).
  void init_uniform(util::Rng& rng, float scale);
  /// Gaussian init with the given stddev.
  void init_normal(util::Rng& rng, float stddev);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar);

  /// Elementwise (Hadamard) product into this.
  Matrix& hadamard(const Matrix& other);

  /// Apply f to every element in place.
  void apply(const std::function<float(float)>& f);

  /// Sum of all elements.
  float sum() const;
  /// Sum of squared elements (for gradient-norm clipping).
  double squared_norm() const;

  /// Transposed copy.
  Matrix transposed() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = A * B. Shapes: (m x k) * (k x n) -> (m x n). `out` is overwritten
/// and may not alias A or B.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out += A * B.
void matmul_accum(const Matrix& a, const Matrix& b, Matrix& out);

/// out += A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n).
void matmul_transA_accum(const Matrix& a, const Matrix& b, Matrix& out);

/// out += A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void matmul_transB_accum(const Matrix& a, const Matrix& b, Matrix& out);

/// Add a 1 x cols bias row to every row of m.
void add_row_bias(Matrix& m, const Matrix& bias);

/// y += alpha * x (flat AXPY over equal-shaped matrices).
void axpy(float alpha, const Matrix& x, Matrix& y);

/// Row-wise softmax in place.
void softmax_rows(Matrix& m);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace desmine::tensor
