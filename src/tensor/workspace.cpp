#include "tensor/workspace.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::tensor {

namespace {

// 256 KiB minimum chunk: big enough that toy configs never grow twice,
// small enough that a thread_local workspace per pool thread stays cheap.
constexpr std::size_t kMinChunkFloats = 64 * 1024;
// Allocations are rounded to 16 floats (64 bytes) so consecutive slices
// start on distinct cache lines.
constexpr std::size_t kAlignFloats = 16;

std::atomic<std::size_t>& global_peak_bytes() {
  static std::atomic<std::size_t> v{0};
  return v;
}

obs::Gauge& peak_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("tensor.workspace.bytes_peak");
  return g;
}

obs::Counter& rewind_counter() {
  static obs::Counter& c = obs::metrics().counter("tensor.workspace.rewinds");
  return c;
}

void note_global_peak(std::size_t bytes) {
  std::atomic<std::size_t>& peak = global_peak_bytes();
  std::size_t cur = peak.load(std::memory_order_relaxed);
  while (bytes > cur &&
         !peak.compare_exchange_weak(cur, bytes, std::memory_order_relaxed)) {
  }
  peak_gauge().set(static_cast<double>(peak.load(std::memory_order_relaxed)));
}

}  // namespace

Workspace::~Workspace() = default;

float* Workspace::bump(std::size_t count) {
  count = (count + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  while (chunk_ < chunks_.size() &&
         used_ + count > chunks_[chunk_].capacity) {
    // Space left in the current chunk is parked until the next rewind.
    floats_before_ += chunks_[chunk_].capacity;
    ++chunk_;
    used_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    std::size_t reserved_floats = 0;
    for (const Chunk& c : chunks_) reserved_floats += c.capacity;
    const std::size_t cap =
        std::max({count, kMinChunkFloats, reserved_floats});
    chunks_.push_back(Chunk{std::make_unique<float[]>(cap), cap});
    used_ = 0;
    ++stats_.grows;
    stats_.bytes_reserved += cap * sizeof(float);
  }
  float* out = chunks_[chunk_].data.get() + used_;
  used_ += count;
  const std::size_t live = (floats_before_ + used_) * sizeof(float);
  if (live > stats_.bytes_peak) {
    stats_.bytes_peak = live;
    note_global_peak(live);
  }
  return out;
}

MatrixView Workspace::alloc(std::size_t rows, std::size_t cols) {
  float* data = alloc_floats(rows * cols);
  return MatrixView(data, rows, cols);
}

float* Workspace::alloc_floats(std::size_t count) {
  float* data = bump(count);
  std::fill(data, data + count, 0.0f);
  return data;
}

void Workspace::rewind(Checkpoint cp) {
  DESMINE_EXPECTS(cp.chunk < chunks_.size() ||
                      (cp.chunk == 0 && cp.used == 0),
                  "rewind checkpoint from a different workspace");
  DESMINE_EXPECTS(cp.chunk < chunk_ ||
                      (cp.chunk == chunk_ && cp.used <= used_),
                  "workspace rewind must go backwards");
  chunk_ = cp.chunk;
  used_ = cp.used;
  floats_before_ = 0;
  for (std::size_t i = 0; i < chunk_; ++i) {
    floats_before_ += chunks_[i].capacity;
  }
  ++stats_.rewinds;
  rewind_counter().inc();
}

void Workspace::reserve(std::size_t bytes) {
  if (stats_.bytes_reserved >= bytes) return;
  const std::size_t missing_floats =
      (bytes - stats_.bytes_reserved + sizeof(float) - 1) / sizeof(float);
  const std::size_t cap = std::max(missing_floats, kMinChunkFloats);
  chunks_.push_back(Chunk{std::make_unique<float[]>(cap), cap});
  ++stats_.grows;
  stats_.bytes_reserved += cap * sizeof(float);
}

Workspace::Stats Workspace::stats() const { return stats_; }

std::size_t Workspace::bytes_used() const {
  return (floats_before_ + used_) * sizeof(float);
}

}  // namespace desmine::tensor
