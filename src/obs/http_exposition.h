// Embedded HTTP exposition for the telemetry plane.
//
// A deliberately tiny HTTP/1.0 server: one loopback listener, one acceptor
// thread, requests handled sequentially (a scrape every few seconds from a
// dashboard or a Prometheus poller — not a web server). Handlers are
// registered per exact path before start(); unknown paths get 404. start()
// with port 0 binds an ephemeral port, readable via port() — how tests run
// a real scrape without a fixed-port race.
//
// mount_telemetry() wires the standard trio: /metrics (Prometheus text via
// obs::scrape_prometheus), /healthz ("ok"), and /statusz (caller-provided
// JSON, e.g. desmine_serve's uptime/version/stage-quantiles document).
//
// http_get() is the matching one-shot loopback client, used by desmine_top
// and the telemetry tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace desmine::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpExposition {
 public:
  HttpExposition() = default;
  ~HttpExposition();

  HttpExposition(const HttpExposition&) = delete;
  HttpExposition& operator=(const HttpExposition&) = delete;

  /// Register `fn` for GET requests on exactly `path` (query strings are
  /// stripped before matching). Must be called before start().
  void handle(std::string path, std::function<HttpResponse()> fn);

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start the acceptor thread.
  /// Throws util::RuntimeError when the port cannot be bound.
  void start(std::uint16_t port);

  /// Close the listener and join the acceptor. Idempotent; the destructor
  /// calls it.
  void stop();

  bool running() const { return listener_ >= 0; }
  /// The bound port (resolved after start(), also for ephemeral binds).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void answer(int fd) const;

  std::map<std::string, std::function<HttpResponse()>> handlers_;
  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
};

/// One-shot HTTP GET against 127.0.0.1:`port` ("localhost" loopback only —
/// this is an ops-plane client, not a general fetcher). Throws
/// util::RuntimeError on connect/IO failure; non-200 statuses are returned,
/// not thrown.
struct HttpGetResult {
  int status = 0;
  std::string body;
};
HttpGetResult http_get(std::uint16_t port, const std::string& path);

/// Register the standard telemetry endpoints on `http`: /metrics (Prometheus
/// text format), /healthz, and — when `statusz` is provided — /statusz
/// serving its JSON document.
void mount_telemetry(HttpExposition& http,
                     std::function<std::string()> statusz = {});

}  // namespace desmine::obs
