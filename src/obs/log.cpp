#include "obs/log.h"

#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>

#include "obs/json.h"
#include "util/error.h"

namespace desmine::obs {

namespace {

std::uint64_t this_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

/// "12.5" for round-ish doubles, "%g" keeps fields compact.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "unknown";
}

Level parse_level(std::string_view name) {
  for (Level l : {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn,
                  Level::kError, Level::kOff}) {
    if (name == level_name(l)) return l;
  }
  DESMINE_EXPECTS(false, "unknown log level '" + std::string(name) +
                             "' (want trace|debug|info|warn|error|off)");
  return Level::kInfo;  // unreachable
}

Field kv(std::string key, std::string value) {
  return Field{std::move(key), std::move(value)};
}
Field kv(std::string key, std::string_view value) {
  return Field{std::move(key), std::string(value)};
}
Field kv(std::string key, const char* value) {
  return Field{std::move(key), std::string(value)};
}
Field kv(std::string key, double value) {
  return Field{std::move(key), format_double(value)};
}
Field kv(std::string key, bool value) {
  return Field{std::move(key), value ? "true" : "false"};
}

std::string format_text(const LogRecord& record) {
  const std::time_t secs = std::chrono::system_clock::to_time_t(record.time);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      record.time.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));

  std::string out = stamp;
  out += ' ';
  std::string lvl = level_name(record.level);
  for (char& c : lvl) c = static_cast<char>(std::toupper(c));
  out += lvl;
  out.append(6 - lvl.size(), ' ');  // align messages ("DEBUG " vs "INFO  ")
  out += record.message;
  for (const Field& f : record.fields) {
    out += ' ';
    out += f.key;
    out += '=';
    if (needs_quoting(f.value)) {
      out += JsonWriter::quote(f.value);
    } else {
      out += f.value;
    }
  }
  return out;
}

std::string format_jsonl(const LogRecord& record) {
  JsonWriter w;
  w.begin_object();
  const double ts =
      std::chrono::duration<double>(record.time.time_since_epoch()).count();
  w.key("ts").value(ts);
  w.key("level").value(std::string_view(level_name(record.level)));
  w.key("msg").value(std::string_view(record.message));
  w.key("tid").value(static_cast<std::uint64_t>(record.thread_id));
  for (const Field& f : record.fields) {
    w.key(f.key).value(std::string_view(f.value));
  }
  w.end_object();
  return w.str();
}

void StderrSink::write(const LogRecord& record) {
  std::cerr << format_text(record) << '\n';
}

struct FileSink::Impl {
  std::ofstream file;
};

FileSink::FileSink(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->file.open(path, std::ios::app);
  if (!impl_->file) throw RuntimeError("cannot open log file: " + path);
}

FileSink::~FileSink() = default;

void FileSink::write(const LogRecord& record) {
  impl_->file << format_text(record) << '\n';
  impl_->file.flush();
}

struct JsonLinesSink::Impl {
  std::ofstream file;
};

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(&out) {}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : impl_(std::make_unique<Impl>()), out_(nullptr) {
  impl_->file.open(path, std::ios::app);
  if (!impl_->file) throw RuntimeError("cannot open log file: " + path);
  out_ = &impl_->file;
}

JsonLinesSink::~JsonLinesSink() = default;

void JsonLinesSink::write(const LogRecord& record) {
  *out_ << format_jsonl(record) << '\n';
  out_->flush();
}

Logger::Logger() : level_(static_cast<int>(Level::kInfo)) {
  sinks_.push_back(std::make_shared<StderrSink>());
}

void Logger::set_sink(std::shared_ptr<Sink> sink) {
  std::lock_guard lock(mutex_);
  sinks_.clear();
  if (sink) sinks_.push_back(std::move(sink));
}

void Logger::add_sink(std::shared_ptr<Sink> sink) {
  DESMINE_EXPECTS(sink != nullptr, "sink must be non-null");
  std::lock_guard lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void Logger::clear_sinks() {
  std::lock_guard lock(mutex_);
  sinks_.clear();
}

void Logger::log(Level level, std::string_view message,
                 std::vector<Field> fields) {
  if (!enabled(level) || level == Level::kOff) return;
  LogRecord record;
  record.level = level;
  record.message = std::string(message);
  record.fields = std::move(fields);
  record.time = std::chrono::system_clock::now();
  record.thread_id = this_thread_hash();
  std::lock_guard lock(mutex_);  // serializes sink writes (unscrambled lines)
  for (const auto& sink : sinks_) sink->write(record);
}

Logger& logger() {
  static Logger instance;
  return instance;
}

}  // namespace desmine::obs
