// Structured, leveled logging for the desmine library and tools.
//
// Library code never writes to std streams directly; it logs through the
// process-wide obs::logger(), which fans records out to pluggable sinks
// (stderr text, file text, JSON lines). Records carry key=value fields so
// downstream tooling can filter without parsing prose:
//
//   DESMINE_LOG_DEBUG("pair model trained",
//                     {obs::kv("src", name), obs::kv("bleu", 87.2)});
//
// The level check is a relaxed atomic load, so disabled levels cost one
// branch. Trace/debug calls can additionally be stripped at compile time by
// defining DESMINE_OBS_MIN_LEVEL above their numeric level.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace desmine::obs {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Lower-case level name ("trace" ... "off").
const char* level_name(Level level);

/// Parse "trace|debug|info|warn|error|off"; throws PreconditionError.
Level parse_level(std::string_view name);

/// One structured key=value pair attached to a log record or span.
struct Field {
  std::string key;
  std::string value;
};

Field kv(std::string key, std::string value);
Field kv(std::string key, std::string_view value);
Field kv(std::string key, const char* value);
Field kv(std::string key, double value);
Field kv(std::string key, bool value);

template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
Field kv(std::string key, T value) {
  return Field{std::move(key), std::to_string(value)};
}

struct LogRecord {
  Level level = Level::kInfo;
  std::string message;
  std::vector<Field> fields;
  std::chrono::system_clock::time_point time;
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id
};

/// Human-readable single line: "HH:MM:SS.mmm LEVEL message key=value ...".
std::string format_text(const LogRecord& record);

/// One JSON object (no trailing newline): {"ts":..., "level":..., ...}.
std::string format_jsonl(const LogRecord& record);

/// Output backend. write() calls are serialized by the logger.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Text lines to stderr (the default sink).
class StderrSink : public Sink {
 public:
  void write(const LogRecord& record) override;
};

/// Text lines appended to a file; throws RuntimeError if it cannot open.
class FileSink : public Sink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(const LogRecord& record) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// JSON-lines records to a caller-owned stream (tests) or a file (tools).
class JsonLinesSink : public Sink {
 public:
  explicit JsonLinesSink(std::ostream& out);
  explicit JsonLinesSink(const std::string& path);
  ~JsonLinesSink() override;
  void write(const LogRecord& record) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::ostream* out_;  ///< non-owning when constructed from a stream
};

/// Thread-safe leveled logger fanning out to its sinks.
class Logger {
 public:
  /// Starts at kInfo with a StderrSink installed.
  Logger();

  bool enabled(Level level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }
  Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  void set_level(Level level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Replace all sinks / add another sink. Thread-safe.
  void set_sink(std::shared_ptr<Sink> sink);
  void add_sink(std::shared_ptr<Sink> sink);
  void clear_sinks();

  void log(Level level, std::string_view message,
           std::vector<Field> fields = {});

  void trace(std::string_view msg, std::vector<Field> f = {}) {
    log(Level::kTrace, msg, std::move(f));
  }
  void debug(std::string_view msg, std::vector<Field> f = {}) {
    log(Level::kDebug, msg, std::move(f));
  }
  void info(std::string_view msg, std::vector<Field> f = {}) {
    log(Level::kInfo, msg, std::move(f));
  }
  void warn(std::string_view msg, std::vector<Field> f = {}) {
    log(Level::kWarn, msg, std::move(f));
  }
  void error(std::string_view msg, std::vector<Field> f = {}) {
    log(Level::kError, msg, std::move(f));
  }

 private:
  std::atomic<int> level_;
  std::mutex mutex_;
  std::vector<std::shared_ptr<Sink>> sinks_;
};

/// The process-wide logger every library component reports through.
Logger& logger();

}  // namespace desmine::obs

// Numeric level constants usable in #if / if constexpr.
#define DESMINE_OBS_LEVEL_TRACE 0
#define DESMINE_OBS_LEVEL_DEBUG 1
#define DESMINE_OBS_LEVEL_INFO 2
#define DESMINE_OBS_LEVEL_WARN 3
#define DESMINE_OBS_LEVEL_ERROR 4

// Calls below this level compile to nothing (e.g. build with
// -DDESMINE_OBS_MIN_LEVEL=DESMINE_OBS_LEVEL_INFO to strip debug logging).
#ifndef DESMINE_OBS_MIN_LEVEL
#define DESMINE_OBS_MIN_LEVEL DESMINE_OBS_LEVEL_TRACE
#endif

#define DESMINE_LOG_AT_(numeric, enum_level, ...)                         \
  do {                                                                    \
    if constexpr ((numeric) >= DESMINE_OBS_MIN_LEVEL) {                   \
      auto& desmine_lg_ = ::desmine::obs::logger();                       \
      if (desmine_lg_.enabled(enum_level)) {                              \
        desmine_lg_.log(enum_level, __VA_ARGS__);                         \
      }                                                                   \
    }                                                                     \
  } while (0)

#define DESMINE_LOG_TRACE(...)                                      \
  DESMINE_LOG_AT_(DESMINE_OBS_LEVEL_TRACE,                          \
                  ::desmine::obs::Level::kTrace, __VA_ARGS__)
#define DESMINE_LOG_DEBUG(...)                                      \
  DESMINE_LOG_AT_(DESMINE_OBS_LEVEL_DEBUG,                          \
                  ::desmine::obs::Level::kDebug, __VA_ARGS__)
#define DESMINE_LOG_INFO(...)                                       \
  DESMINE_LOG_AT_(DESMINE_OBS_LEVEL_INFO,                           \
                  ::desmine::obs::Level::kInfo, __VA_ARGS__)
#define DESMINE_LOG_WARN(...)                                       \
  DESMINE_LOG_AT_(DESMINE_OBS_LEVEL_WARN,                           \
                  ::desmine::obs::Level::kWarn, __VA_ARGS__)
#define DESMINE_LOG_ERROR(...)                                      \
  DESMINE_LOG_AT_(DESMINE_OBS_LEVEL_ERROR,                          \
                  ::desmine::obs::Level::kError, __VA_ARGS__)
