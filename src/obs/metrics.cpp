#include "obs/metrics.h"

#include <cmath>

#include "obs/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace desmine::obs {

// ---------------------------------------------------------- Histogram ------

std::size_t Histogram::bucket_of(double v) {
  if (!(v > bucket_upper(0))) return 0;  // also catches NaN / non-positive
  const int b = static_cast<int>(std::ceil(std::log2(v))) + kExpOffset;
  if (b < 1) return 1;
  if (b >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(b);
}

double Histogram::bucket_upper(std::size_t b) {
  return std::exp2(static_cast<int>(b) - kExpOffset);
}

Histogram::Shard& Histogram::this_thread_shard(
    std::array<Shard, kShards>& shards) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards[index];
}

void Histogram::record(double v) {
  if (!std::isfinite(v)) v = 0.0;
  Shard& shard = this_thread_shard(shards_);
  shard.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + v,
                                          std::memory_order_relaxed)) {
  }
  double lo = shard.min.load(std::memory_order_relaxed);
  while (v < lo &&
         !shard.min.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = shard.max.load(std::memory_order_relaxed);
  while (v > hi &&
         !shard.max.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    const std::uint64_t n = shard.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.count += n;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    lo = std::min(lo, shard.min.load(std::memory_order_relaxed));
    hi = std::max(hi, shard.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
  }
  if (snap.count > 0) {
    snap.min = lo;
    snap.max = hi;
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      // Interpolate linearly within the winning bucket: assuming samples
      // spread uniformly over (lower, upper], the rank's position inside the
      // bucket picks the estimate. Returning bucket_upper(b) outright (the
      // old behaviour) overstates mid-bucket distributions by up to 2x.
      const double upper = bucket_upper(b);
      const double lower = b == 0 ? std::min(min, upper) : bucket_upper(b - 1);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[b]);
      const double estimate = lower + (upper - lower) * frac;
      return std::min(std::max(estimate, min), max);
    }
    seen += buckets[b];
  }
  return max;
}

// ---------------------------------------------------- MetricsRegistry ------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(name, h->snapshot());
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    w.key(name).begin_object();
    w.key("count").value(s.count);
    w.key("sum").value(s.sum);
    w.key("min").value(s.min);
    w.key("max").value(s.max);
    w.key("mean").value(s.mean());
    w.key("p50").value(s.quantile(0.50));
    w.key("p95").value(s.quantile(0.95));
    w.key("p99").value(s.quantile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      w.begin_object();
      w.key("le").value(Histogram::bucket_upper(b));
      w.key("count").value(s.buckets[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard lock(mutex_);
  std::string out;
  if (!counters_.empty()) {
    util::Table t({"counter", "value"});
    for (const auto& [name, c] : counters_) {
      t.add_row({name, std::to_string(c->value())});
    }
    out += t.to_text("counters");
  }
  if (!gauges_.empty()) {
    util::Table t({"gauge", "value"});
    for (const auto& [name, g] : gauges_) {
      t.add_row({name, util::fixed(g->value(), 3)});
    }
    out += t.to_text("gauges");
  }
  if (!histograms_.empty()) {
    util::Table t({"histogram", "count", "mean", "p50", "p95", "max"});
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot s = h->snapshot();
      t.add_row({name, std::to_string(s.count), util::fixed(s.mean(), 3),
                 util::fixed(s.quantile(0.50), 3),
                 util::fixed(s.quantile(0.95), 3), util::fixed(s.max, 3)});
    }
    out += t.to_text("histograms");
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace desmine::obs
