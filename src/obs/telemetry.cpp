#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace desmine::obs {

// ---------------------------------------------------- SlidingHistogram -----

SlidingHistogram::SlidingHistogram(double window_s, std::size_t epochs)
    : window_s_(window_s), base_(Clock::now()) {
  DESMINE_EXPECTS(window_s > 0.0, "sliding window must be positive");
  DESMINE_EXPECTS(epochs > 0, "sliding histogram needs at least one epoch");
  epoch_len_ = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(window_s / static_cast<double>(epochs)));
  if (epoch_len_.count() <= 0) epoch_len_ = Clock::duration{1};
  slots_.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    slots_.push_back(std::make_unique<Histogram>());
  }
  slot_epoch_.assign(epochs, -1);
}

std::int64_t SlidingHistogram::epoch_index(Clock::time_point t) const {
  const auto ticks = (t - base_).count();
  if (ticks <= 0) return 0;  // pre-base timestamps land in the first epoch
  return static_cast<std::int64_t>(ticks / epoch_len_.count());
}

void SlidingHistogram::record_at(Clock::time_point now, double v) {
  std::lock_guard lock(mutex_);
  current_ = std::max(current_, epoch_index(now));
  const std::size_t slot =
      static_cast<std::size_t>(current_) % slots_.size();
  if (slot_epoch_[slot] != current_) {
    // The slot still holds an epoch that fell out of the window; recycle it.
    slots_[slot]->reset();
    slot_epoch_[slot] = current_;
  }
  slots_[slot]->record(v);
}

Histogram::Snapshot SlidingHistogram::snapshot_at(Clock::time_point now) const {
  std::lock_guard lock(mutex_);
  current_ = std::max(current_, epoch_index(now));
  const std::int64_t n = static_cast<std::int64_t>(slots_.size());
  Histogram::Snapshot merged;
  bool any = false;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    // Live epochs are exactly (current - epochs, current]; stale slots are
    // skipped here and recycled lazily by record_at.
    if (slot_epoch_[s] < 0 || slot_epoch_[s] <= current_ - n ||
        slot_epoch_[s] > current_) {
      continue;
    }
    const Histogram::Snapshot part = slots_[s]->snapshot();
    if (part.count == 0) continue;
    merged.count += part.count;
    merged.sum += part.sum;
    merged.min = any ? std::min(merged.min, part.min) : part.min;
    merged.max = any ? std::max(merged.max, part.max) : part.max;
    for (std::size_t b = 0; b < merged.buckets.size(); ++b) {
      merged.buckets[b] += part.buckets[b];
    }
    any = true;
  }
  return merged;
}

// --------------------------------------------------- TelemetryRegistry -----

void TelemetryRegistry::configure(double window_s, std::size_t epochs) {
  DESMINE_EXPECTS(window_s > 0.0, "sliding window must be positive");
  DESMINE_EXPECTS(epochs > 0, "sliding histogram needs at least one epoch");
  std::lock_guard lock(mutex_);
  window_s_ = window_s;
  epochs_ = epochs;
}

SlidingHistogram& TelemetryRegistry::sliding(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = sliding_[name];
  if (!slot) slot = std::make_unique<SlidingHistogram>(window_s_, epochs_);
  return *slot;
}

std::map<std::string, Histogram::Snapshot> TelemetryRegistry::snapshot()
    const {
  std::lock_guard lock(mutex_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : sliding_) out.emplace(name, h->snapshot());
  return out;
}

void TelemetryRegistry::reset() {
  std::lock_guard lock(mutex_);
  sliding_.clear();
}

double TelemetryRegistry::window_s() const {
  std::lock_guard lock(mutex_);
  return window_s_;
}

std::size_t TelemetryRegistry::epochs() const {
  std::lock_guard lock(mutex_);
  return epochs_;
}

TelemetryRegistry& telemetry() {
  static TelemetryRegistry instance;
  return instance;
}

// ------------------------------------------------ Prometheus exposition ----

std::string prometheus_name(std::string_view name) {
  std::string out = "desmine_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string fmt_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void emit_histogram_buckets(std::string& out, const std::string& name,
                            const Histogram::Snapshot& s) {
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < s.buckets.size(); ++b) {
    if (s.buckets[b] == 0) continue;
    cumulative += s.buckets[b];
    out += name + "_bucket{le=\"" +
           prometheus_escape_label(fmt_value(Histogram::bucket_upper(b))) +
           "\"} " + std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) + "\n";
  out += name + "_sum " + fmt_value(s.sum) + "\n";
  out += name + "_count " + std::to_string(s.count) + "\n";
}

void emit_summary(std::string& out, const std::string& name,
                  const Histogram::Snapshot& s) {
  static constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
  for (const double q : kQuantiles) {
    out += name + "{quantile=\"" + fmt_value(q) + "\"} " +
           fmt_value(s.quantile(q)) + "\n";
  }
  out += name + "_sum " + fmt_value(s.sum) + "\n";
  out += name + "_count " + std::to_string(s.count) + "\n";
}

}  // namespace

std::string to_prometheus(
    const RegistrySnapshot& registry,
    const std::map<std::string, Histogram::Snapshot>& sliding) {
  std::string out;
  for (const auto& [name, value] : registry.counters) {
    const std::string n = prometheus_name(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : registry.gauges) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt_value(value) + "\n";
  }
  for (const auto& [name, snap] : registry.histograms) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " histogram\n";
    emit_histogram_buckets(out, n, snap);
  }
  for (const auto& [name, snap] : sliding) {
    const std::string n = prometheus_name(name) + "_recent";
    out += "# TYPE " + n + " summary\n";
    emit_summary(out, n, snap);
  }
  return out;
}

std::string scrape_prometheus() {
  return to_prometheus(metrics().snapshot(), telemetry().snapshot());
}

}  // namespace desmine::obs
