#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace desmine::obs {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": — no comma
  }
  if (!container_has_items_.empty()) {
    if (container_has_items_.back()) out_ += ',';
    container_has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DESMINE_ENSURES(!container_has_items_.empty(), "unbalanced end_object");
  container_has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DESMINE_ENSURES(!container_has_items_.empty(), "unbalanced end_array");
  container_has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += quote(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();  // JSON has no inf/nan
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw RuntimeError("json parse error at offset " + std::to_string(pos_) +
                       ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // UTF-8 encode (BMP only; surrogate pairs are rejected — the
          // configs and protocol this parser serves are ASCII in practice).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = number;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace desmine::obs
