#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace desmine::obs {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": — no comma
  }
  if (!container_has_items_.empty()) {
    if (container_has_items_.back()) out_ += ',';
    container_has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DESMINE_ENSURES(!container_has_items_.empty(), "unbalanced end_object");
  container_has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DESMINE_ENSURES(!container_has_items_.empty(), "unbalanced end_array");
  container_has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += quote(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();  // JSON has no inf/nan
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace desmine::obs
