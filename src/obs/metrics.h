// Process-wide metrics: named counters, gauges, and histograms.
//
// Hot paths hold a reference to an instrument (lookup once, then lock-free
// atomic updates). Histograms use fixed log-scale buckets and shard their
// atomics across cache lines so concurrent writers (e.g. the miner's thread
// pool) don't serialize on one counter. Snapshots and the JSON/text dumps
// are approximate under concurrent writes, exact once writers quiesce.
//
// Robustness instruments emitted by the fault-tolerant pipeline (ISSUE 2):
//   miner.pair.retries          counter: pair training attempts retried
//   miner.pair.failed           counter: pairs that permanently failed
//   checkpoint.pairs_skipped    counter: pairs restored from the journal
//   checkpoint.pairs_journaled  counter: pair records durably appended
//   nmt.train.divergences       counter: divergence-guard trips
//
// Degraded-mode detection instruments (ISSUE 3):
//   detect.sensor.dropped       counter: healthy -> dropped transitions
//   detect.sensor.stale         counter: healthy -> stale transitions
//   detect.sensor.flooding      counter: healthy -> flooding transitions
//   detect.sensor.readmitted    counter: unhealthy -> healthy re-admissions
//   detect.window.degraded      counter: windows below the coverage quorum
//   csv.rows_bad                counter: malformed rows seen in tolerant mode
//   csv.rows_quarantined        counter: malformed rows journaled
//
// Arena instruments for the zero-allocation hot path (ISSUE 4):
//   tensor.workspace.bytes_peak gauge: largest bytes-reserved across all
//                               workspaces (a flat value across training
//                               steps is the zero-steady-state-growth claim)
//   tensor.workspace.rewinds    counter: arena rewinds/resets (reuse events)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace desmine::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value that can move both ways (queue depth, learning rate).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free distribution over fixed log2-scale buckets.
///
/// Bucket b (b >= 1) covers (2^(b-1-kExpOffset), 2^(b-kExpOffset)]; bucket 0
/// absorbs everything <= 2^-kExpOffset (including non-positive values). With
/// kExpOffset = 16 the resolvable range is ~1.5e-5 .. 1.4e14, which spans
/// sub-millisecond timer values through multi-hour wall clocks in ms.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr int kExpOffset = 16;

  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Estimate of the q-quantile (q in [0, 1]): linear interpolation within
    /// the log2 bucket the rank falls into, clamped to [min, max] so a
    /// single-valued distribution reports that value exactly. quantile(0)
    /// is min and quantile(1) is max by construction.
    double quantile(double q) const;
  };

  Snapshot snapshot() const;
  void reset();

  static std::size_t bucket_of(double v);
  /// Inclusive upper bound of bucket b.
  static double bucket_upper(std::size_t b);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  static constexpr std::size_t kShards = 8;

  static Shard& this_thread_shard(std::array<Shard, kShards>& shards);

  std::array<Shard, kShards> shards_;
};

/// Point-in-time copy of every instrument, for exporters that need to walk
/// the registry without holding its lock (obs::to_prometheus, /statusz).
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

/// Registry of named instruments. Lookup is mutex-protected; returned
/// references stay valid for the registry's lifetime (instruments are never
/// removed, only reset).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copy of every instrument's current value. Approximate under concurrent
  /// writers, like the dumps.
  RegistrySnapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, mean, p50, p95, p99, buckets: [{le, count}...]}}}
  std::string to_json() const;

  /// Human-readable table dump (one section per instrument kind).
  std::string to_text() const;

  /// Zero every instrument (names stay registered). Test/tool helper; not
  /// safe against concurrent writers.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry the pipeline reports into.
MetricsRegistry& metrics();

}  // namespace desmine::obs
