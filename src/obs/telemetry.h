// Live telemetry: sliding-window histograms and Prometheus exposition.
//
// MetricsRegistry instruments are since-boot cumulatives — the right shape
// for post-mortem dumps, the wrong one for a dashboard ("p99 over the last
// minute", not "p99 since Tuesday"). SlidingHistogram keeps a ring of
// epoch-sized Histograms and rotates them on the steady clock; a snapshot
// merges the live epochs, so quantiles reflect only recent samples.
// TelemetryRegistry names them, mirroring MetricsRegistry (lookup once,
// record forever), and to_prometheus() renders both registries in the
// Prometheus text format (0.0.4): counters as `_total`, histograms with
// cumulative `le` buckets plus `+Inf`, sliding windows as `_recent`
// summaries carrying quantile labels. The exposition walks RegistrySnapshot
// copies, never instrument references, so a scrape holds no registry lock
// while formatting.
//
// Time injection: record_at/snapshot_at take an explicit steady_clock point
// so epoch rotation is testable without sleeping. The production record()
// and snapshot() just pass now().
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace desmine::obs {

/// Distribution over the trailing `window_s` seconds: a ring of `epochs`
/// Histograms, each covering window_s / epochs seconds. record() lands in
/// the current epoch; snapshot() merges every epoch still inside the
/// window. Fully mutex-serialized — sliding instruments sit off the hot
/// path (one record per served window, not per tensor op).
class SlidingHistogram {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SlidingHistogram(double window_s = 60.0, std::size_t epochs = 6);

  void record(double v) { record_at(Clock::now(), v); }
  Histogram::Snapshot snapshot() const { return snapshot_at(Clock::now()); }

  /// Time-injected variants (test seams; rotation is pure arithmetic on the
  /// given clock point, so tests drive it deterministically).
  void record_at(Clock::time_point now, double v);
  Histogram::Snapshot snapshot_at(Clock::time_point now) const;

  double window_s() const { return window_s_; }
  std::size_t epochs() const { return slots_.size(); }

 private:
  std::int64_t epoch_index(Clock::time_point t) const;

  double window_s_;
  Clock::duration epoch_len_;
  Clock::time_point base_;

  mutable std::mutex mutex_;
  /// Slot e % epochs holds epoch e. Slots are recycled lazily: a slot whose
  /// recorded epoch fell out of the window is reset on next use and simply
  /// skipped by snapshots until then.
  mutable std::vector<std::unique_ptr<Histogram>> slots_;
  mutable std::vector<std::int64_t> slot_epoch_;  ///< -1 = never used
  mutable std::int64_t current_ = 0;
};

/// Registry of named sliding histograms, the live-window sibling of
/// MetricsRegistry. References stay valid for the registry's lifetime.
class TelemetryRegistry {
 public:
  /// Window shape for instruments created after this call (existing ones
  /// keep theirs). Serving wires ServeConfig::{sliding_window_s,
  /// sliding_epochs} through here before registering instruments.
  void configure(double window_s, std::size_t epochs);

  SlidingHistogram& sliding(const std::string& name);

  /// Rotated-to-now snapshot of every sliding instrument.
  std::map<std::string, Histogram::Snapshot> snapshot() const;

  /// Drop every instrument (names included). Test/tool helper; callers must
  /// not hold references across a reset.
  void reset();

  double window_s() const;
  std::size_t epochs() const;

 private:
  mutable std::mutex mutex_;
  double window_s_ = 60.0;
  std::size_t epochs_ = 6;
  std::map<std::string, std::unique_ptr<SlidingHistogram>> sliding_;
};

/// The process-wide sliding-instrument registry.
TelemetryRegistry& telemetry();

/// Metric name in Prometheus form: "desmine_" prefix, every character
/// outside [A-Za-z0-9_] replaced by '_' ("serve.window.latency_ms" ->
/// "desmine_serve_window_latency_ms").
std::string prometheus_name(std::string_view name);

/// Label-value escaping per the text format: backslash, double quote, and
/// newline become \\, \", and \n.
std::string prometheus_escape_label(std::string_view value);

/// Render both registries as Prometheus text format 0.0.4. Counters emit as
/// `<name>_total`, gauges as-is, histograms with cumulative `le` buckets
/// terminated by `+Inf` plus `_sum`/`_count`, and sliding snapshots as
/// `<name>_recent` summaries with quantile="0.5|0.95|0.99" labels.
std::string to_prometheus(
    const RegistrySnapshot& registry,
    const std::map<std::string, Histogram::Snapshot>& sliding);

/// to_prometheus over the process-wide metrics() and telemetry().
std::string scrape_prometheus();

}  // namespace desmine::obs
