// Minimal JSON emitter + recursive-descent parser.
//
// The emitter handles comma placement, string escaping, and non-finite
// number clamping; callers drive nesting with begin/end pairs (checked via
// DESMINE_ENSURES). The parser (parse_json) covers the full nested grammar
// needed by config files and the serve protocol: objects, arrays, strings
// with standard escapes (incl. \uXXXX for the BMP), numbers, booleans, and
// null. Errors throw util::RuntimeError naming the byte offset. For flat
// single-level objects on hot paths, robust::parse_flat_json remains the
// cheaper non-throwing alternative.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace desmine::obs {

/// A parsed JSON document node. Object members keep insertion order so
/// error messages and re-emission stay deterministic.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// First member named `key`, or null when absent / not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws util::RuntimeError with the byte offset of
/// the first offending character.
JsonValue parse_json(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document built so far. Valid once every begin_* is closed.
  const std::string& str() const { return out_; }

  /// Escape `s` as a JSON string literal (including the quotes).
  static std::string quote(std::string_view s);

 private:
  void comma();

  std::string out_;
  std::vector<bool> container_has_items_;
  bool pending_key_ = false;
};

}  // namespace desmine::obs
