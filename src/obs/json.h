// Minimal streaming JSON emitter for the observability exporters.
//
// Handles comma placement, string escaping, and non-finite number clamping;
// callers drive nesting with begin/end pairs (checked via DESMINE_ENSURES).
// This is an emitter only — the library never needs to parse JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace desmine::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The document built so far. Valid once every begin_* is closed.
  const std::string& str() const { return out_; }

  /// Escape `s` as a JSON string literal (including the quotes).
  static std::string quote(std::string_view s);

 private:
  void comma();

  std::string out_;
  std::vector<bool> container_has_items_;
  bool pending_key_ = false;
};

}  // namespace desmine::obs
