// Nested phase tracing: RAII spans collected into a process-wide trace tree.
//
// A Span marks one timed phase (encrypt -> language -> mine -> per-pair
// train -> bleu-score -> detect). Spans opened on the same thread nest via a
// thread-local stack; spans opened on pool workers become roots of their
// thread's track, which is exactly how chrome://tracing renders them. The
// tracer is disabled by default — a disabled Span is two relaxed atomic
// loads and no allocation — and is enabled by tools that export traces
// (desmine_cli --trace-out, bench dump_observability).
//
// ScopedTimer is the phase-level convenience: it opens a Span and, on
// destruction, records the elapsed milliseconds into the global histogram
// "phase.<name>.wall_ms" so metrics dumps carry per-phase wall clock even
// when tracing is off.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/log.h"      // Field / kv
#include "obs/metrics.h"  // Histogram

namespace desmine::obs {

struct SpanRecord {
  static constexpr std::uint32_t kNoParent = 0xffffffff;

  std::string name;
  std::vector<Field> attrs;
  std::uint64_t start_ns = 0;  ///< since the tracer's epoch (steady clock)
  std::uint64_t end_ns = 0;    ///< 0 while the span is still open
  std::uint32_t parent = kNoParent;
  std::uint64_t thread_id = 0;

  bool finished() const { return end_ns != 0; }
};

class Span;
class Tracer;

/// Handle to a recorded span, detachable from the thread that opened it.
/// Carried by value through queues (e.g. serve::PendingWindow) so work that
/// hops threads keeps one connected trace tree instead of severing at every
/// pool handoff. Invalid (default) contexts are inert: passing one as a
/// parent makes the child a root, finishing one is a no-op.
struct SpanContext {
  const Tracer* tracer = nullptr;
  std::uint32_t id = SpanRecord::kNoParent;

  bool valid() const {
    return tracer != nullptr && id != SpanRecord::kNoParent;
  }
};

/// Collects finished spans. All mutation happens through Span or the
/// explicit cross-thread API (start_span / finish_span / record_complete).
class Tracer {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Open a span that is NOT tied to this thread's RAII stack: the returned
  /// context may be carried to any thread and closed there with
  /// finish_span(). `parent` parents explicitly (invalid context = root).
  /// Returns an invalid context while the tracer is disabled.
  SpanContext start_span(std::string name, SpanContext parent = {},
                         std::vector<Field> attrs = {});
  /// Close a span opened by start_span(). No-op on invalid contexts.
  void finish_span(SpanContext ctx, std::vector<Field> extra_attrs = {});

  /// Retroactively append an already-finished span with explicit steady-
  /// clock endpoints — used to reconstruct per-stage child spans from
  /// timestamps gathered while the work flowed through queues. Returns an
  /// invalid context while disabled.
  SpanContext record_complete(std::string name, SpanContext parent,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end,
                              std::vector<Field> attrs = {});

  /// Drop all records and restart the epoch. Not safe with open spans.
  void reset();

  /// Copy of the recorded spans (finished and still-open).
  std::vector<SpanRecord> records() const;

  /// chrome://tracing "traceEvents" document ("X" complete events; ts/dur in
  /// microseconds). Open spans are skipped.
  std::string to_chrome_json() const;

  /// Nested tree: {"spans": [{name, start_ms, duration_ms, attrs, children:
  /// [...]}]}. Roots are spans without a finished parent on their thread.
  std::string to_tree_json() const;

 private:
  friend class Span;

  std::uint32_t begin_span(std::string name, std::vector<Field> attrs);
  void end_span(std::uint32_t id, std::vector<Field> extra_attrs);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// The process-wide tracer the pipeline reports into.
Tracer& tracer();

/// RAII span on the global tracer. No-op (and allocation-free) while the
/// tracer is disabled.
class Span {
 public:
  explicit Span(std::string name, std::vector<Field> attrs = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a field to the span's record when it closes (e.g. a result
  /// computed mid-phase like a BLEU score).
  void annotate(Field field);

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  bool active() const { return id_ != kInactive; }

 private:
  static constexpr std::uint32_t kInactive = 0xffffffff;

  std::uint32_t id_ = kInactive;
  std::chrono::steady_clock::time_point start_;
  std::vector<Field> late_attrs_;
};

/// RAII phase timer: a Span plus a metrics record. On destruction the
/// elapsed milliseconds land in histogram "phase.<name>.wall_ms" (or an
/// explicit histogram), so phase wall clock shows up in metrics dumps
/// whether or not tracing is enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& phase,
                       std::vector<Field> attrs = {});
  ScopedTimer(std::string span_name, Histogram& sink,
              std::vector<Field> attrs = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Span span_;
  Histogram& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace desmine::obs
