#include "obs/trace.h"

#include <functional>
#include <iterator>
#include <map>
#include <thread>

#include "obs/json.h"
#include "util/error.h"

namespace desmine::obs {

namespace {

/// Open spans of the current thread, innermost last. Entries carry the owning
/// tracer so independent Tracer instances (tests) don't cross-parent.
thread_local std::vector<std::pair<const Tracer*, std::uint32_t>>
    tls_open_spans;

std::uint64_t this_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

// ------------------------------------------------- cross-thread spans ------

SpanContext Tracer::start_span(std::string name, SpanContext parent,
                               std::vector<Field> attrs) {
  if (!enabled()) return {};
  SpanRecord record;
  record.name = std::move(name);
  record.attrs = std::move(attrs);
  record.thread_id = this_thread_hash();
  if (parent.valid() && parent.tracer == this) record.parent = parent.id;
  std::uint32_t id = 0;
  {
    std::lock_guard lock(mutex_);
    record.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    id = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(record));
  }
  return {this, id};
}

void Tracer::finish_span(SpanContext ctx, std::vector<Field> extra_attrs) {
  if (!ctx.valid() || ctx.tracer != this) return;
  std::lock_guard lock(mutex_);
  if (ctx.id >= records_.size()) return;  // reset() raced the open span
  SpanRecord& record = records_[ctx.id];
  record.end_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  for (Field& f : extra_attrs) record.attrs.push_back(std::move(f));
}

SpanContext Tracer::record_complete(std::string name, SpanContext parent,
                                    std::chrono::steady_clock::time_point start,
                                    std::chrono::steady_clock::time_point end,
                                    std::vector<Field> attrs) {
  if (!enabled()) return {};
  SpanRecord record;
  record.name = std::move(name);
  record.attrs = std::move(attrs);
  record.thread_id = this_thread_hash();
  if (parent.valid() && parent.tracer == this) record.parent = parent.id;
  std::uint32_t id = 0;
  {
    std::lock_guard lock(mutex_);
    const auto since_epoch = [this](std::chrono::steady_clock::time_point t) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t - epoch_)
                          .count();
      return ns < 0 ? std::uint64_t{0} : static_cast<std::uint64_t>(ns);
    };
    record.start_ns = since_epoch(start);
    // end_ns == 0 flags a still-open span; a retroactive record is finished
    // by definition, so clamp to at least 1ns past the epoch.
    record.end_ns = std::max<std::uint64_t>(
        std::max(since_epoch(end), record.start_ns), 1);
    id = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(record));
  }
  return {this, id};
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  records_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::uint32_t Tracer::begin_span(std::string name, std::vector<Field> attrs) {
  SpanRecord record;
  record.name = std::move(name);
  record.attrs = std::move(attrs);
  record.thread_id = this_thread_hash();
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->first == this) {
      record.parent = it->second;
      break;
    }
  }
  std::uint32_t id = 0;
  {
    std::lock_guard lock(mutex_);
    record.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    id = static_cast<std::uint32_t>(records_.size());
    records_.push_back(std::move(record));
  }
  tls_open_spans.emplace_back(this, id);
  return id;
}

void Tracer::end_span(std::uint32_t id, std::vector<Field> extra_attrs) {
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it) {
    if (it->first == this && it->second == id) {
      tls_open_spans.erase(std::next(it).base());
      break;
    }
  }
  std::lock_guard lock(mutex_);
  if (id >= records_.size()) return;  // reset() raced a still-open span
  SpanRecord& record = records_[id];
  record.end_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  for (Field& f : extra_attrs) record.attrs.push_back(std::move(f));
}

std::string Tracer::to_chrome_json() const {
  const std::vector<SpanRecord> records = this->records();

  // Compact thread hashes into small tids for readable tracks.
  std::map<std::uint64_t, int> tids;
  for (const SpanRecord& r : records) {
    tids.emplace(r.thread_id, static_cast<int>(tids.size()));
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const SpanRecord& r : records) {
    if (!r.finished()) continue;
    w.begin_object();
    w.key("name").value(std::string_view(r.name));
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(r.start_ns) / 1000.0);
    w.key("dur").value(static_cast<double>(r.end_ns - r.start_ns) / 1000.0);
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(tids.at(r.thread_id)));
    if (!r.attrs.empty()) {
      w.key("args").begin_object();
      for (const Field& f : r.attrs) {
        w.key(f.key).value(std::string_view(f.value));
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
  return w.str();
}

std::string Tracer::to_tree_json() const {
  const std::vector<SpanRecord> records = this->records();

  std::vector<std::vector<std::uint32_t>> children(records.size());
  std::vector<std::uint32_t> roots;
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    if (!records[i].finished()) continue;
    const std::uint32_t p = records[i].parent;
    if (p != SpanRecord::kNoParent && p < records.size() &&
        records[p].finished()) {
      children[p].push_back(i);
    } else {
      roots.push_back(i);
    }
  }

  JsonWriter w;
  std::function<void(std::uint32_t)> emit = [&](std::uint32_t i) {
    const SpanRecord& r = records[i];
    w.begin_object();
    w.key("name").value(std::string_view(r.name));
    w.key("start_ms").value(static_cast<double>(r.start_ns) / 1e6);
    w.key("duration_ms").value(static_cast<double>(r.end_ns - r.start_ns) /
                               1e6);
    if (!r.attrs.empty()) {
      w.key("attrs").begin_object();
      for (const Field& f : r.attrs) {
        w.key(f.key).value(std::string_view(f.value));
      }
      w.end_object();
    }
    if (!children[i].empty()) {
      w.key("children").begin_array();
      for (std::uint32_t c : children[i]) emit(c);
      w.end_array();
    }
    w.end_object();
  };

  w.begin_object();
  w.key("spans").begin_array();
  for (std::uint32_t r : roots) emit(r);
  w.end_array();
  w.end_object();
  return w.str();
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

// --------------------------------------------------------------- Span ------

Span::Span(std::string name, std::vector<Field> attrs)
    : start_(std::chrono::steady_clock::now()) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  id_ = t.begin_span(std::move(name), std::move(attrs));
}

Span::~Span() {
  if (active()) tracer().end_span(id_, std::move(late_attrs_));
}

void Span::annotate(Field field) {
  if (active()) late_attrs_.push_back(std::move(field));
}

// --------------------------------------------------------- ScopedTimer -----

ScopedTimer::ScopedTimer(const std::string& phase, std::vector<Field> attrs)
    : span_(phase, std::move(attrs)),
      sink_(metrics().histogram("phase." + phase + ".wall_ms")),
      start_(std::chrono::steady_clock::now()) {}

ScopedTimer::ScopedTimer(std::string span_name, Histogram& sink,
                         std::vector<Field> attrs)
    : span_(std::move(span_name), std::move(attrs)),
      sink_(sink),
      start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() { sink_.record(elapsed_ms()); }

}  // namespace desmine::obs
