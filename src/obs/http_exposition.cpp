#include "obs/http_exposition.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "obs/telemetry.h"
#include "util/error.h"

namespace desmine::obs {

namespace {

/// Reads are bounded so a stuck peer cannot wedge the sequential server.
void set_io_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;  // peer went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

std::string render(const HttpResponse& r) {
  std::string out = "HTTP/1.0 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

HttpExposition::~HttpExposition() { stop(); }

void HttpExposition::handle(std::string path,
                            std::function<HttpResponse()> fn) {
  DESMINE_EXPECTS(!running(), "handle() must precede start()");
  DESMINE_EXPECTS(fn != nullptr, "handler must be callable");
  handlers_[std::move(path)] = std::move(fn);
}

void HttpExposition::start(std::uint16_t port) {
  DESMINE_EXPECTS(!running(), "exposition already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RuntimeError("telemetry: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    throw RuntimeError("telemetry: cannot listen on 127.0.0.1:" +
                       std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw RuntimeError("telemetry: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  listener_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { serve_loop(); });
}

void HttpExposition::stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblock accept(): shutdown wakes it on Linux, close covers the rest.
  ::shutdown(listener_, SHUT_RDWR);
  ::close(listener_);
  if (acceptor_.joinable()) acceptor_.join();
  listener_ = -1;
}

void HttpExposition::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // transient (EINTR / aborted handshake)
    }
    set_io_timeout(fd, 5);
    answer(fd);
    ::close(fd);
  }
}

void HttpExposition::answer(int fd) const {
  // Read until the end of the request head; the body (if any) is ignored.
  std::string request;
  char chunk[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    request.append(chunk, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    write_all(fd, render({400, "text/plain; charset=utf-8",
                          "malformed request line\n"}));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }

  if (method != "GET") {
    write_all(fd, render({405, "text/plain; charset=utf-8",
                          "only GET is served\n"}));
    return;
  }
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    write_all(fd, render({404, "text/plain; charset=utf-8",
                          "no handler for " + path + "\n"}));
    return;
  }
  HttpResponse response;
  try {
    response = it->second();
  } catch (const std::exception& e) {
    response = {500, "text/plain; charset=utf-8",
                std::string("handler failed: ") + e.what() + "\n"};
  }
  write_all(fd, render(response));
}

HttpGetResult http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RuntimeError("http_get: socket() failed");
  set_io_timeout(fd, 5);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw RuntimeError("http_get: cannot connect to 127.0.0.1:" +
                       std::to_string(port));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  write_all(fd, request);

  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/", 0) != 0) {
    throw RuntimeError("http_get: malformed response");
  }
  HttpGetResult result;
  const std::size_t sp = raw.find(' ');
  if (sp != std::string::npos && sp + 4 <= raw.size()) {
    result.status = std::atoi(raw.c_str() + sp + 1);
  }
  result.body = raw.substr(head_end + 4);
  return result;
}

void mount_telemetry(HttpExposition& http,
                     std::function<std::string()> statusz) {
  http.handle("/metrics", [] {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        scrape_prometheus()};
  });
  http.handle("/healthz", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  if (statusz) {
    http.handle("/statusz", [fn = std::move(statusz)] {
      return HttpResponse{200, "application/json; charset=utf-8", fn()};
    });
  }
}

}  // namespace desmine::obs
