// Mapped (v4) model store: page-aligned artifacts served without copying.
//
// The v1–v3 stream layouts deserialize every tensor into owned heap memory,
// so restarting a serving process pays a full decode of the whole graph
// before the first window can score. The v4 layout instead lays the file out
// so the kernel's page cache IS the weight storage (DESIGN.md §15):
//
//   offset 0    64-byte header (fixed):
//               "DESM" | u32 version=4 | u64 file_size | u64 toc_off |
//               u64 toc_len | u64 edge_count | u64 reserved |
//               u32 toc_crc | u32 header_crc (CRC-32 of bytes [0,52)) | pad
//   then        per-edge meta blobs, densely packed — vocabularies +
//               Seq2SeqConfig in the v3 stream encoding
//   then        per-edge weight regions, each starting on a 4096-byte page
//               boundary; every parameter tensor inside is raw row-major f32
//               at 64-byte alignment (cache-line / SIMD friendly)
//   file end    the TOC: window config, encrypter, sensor names, one entry
//               per edge (scores + blob extents + per-parameter shapes and
//               absolute offsets), permanently failed pairs
//
// ArtifactMap::open mmap()s the file read-only and verifies the header and
// TOC CRCs eagerly — O(header + TOC), independent of total weight bytes.
// Weight pages are faulted in lazily, the first time an edge's model is
// materialized; each edge's meta/weight CRCs are verified exactly once, on
// that first touch. Materialized models hold their weights as
// tensor::ConstMatrixView aliases of the mapped pages (nn::WeightStorage::
// kDeferred) and pin the map alive via shared_ptr, so scoring is zero-copy
// and bit-identical to the heap path. Two maps of one file share pages
// (MAP_SHARED of a read-only file); N serving processes cost one copy of
// the weights in physical memory.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/encryption.h"
#include "core/framework.h"
#include "core/language.h"
#include "core/mvr_graph.h"
#include "util/error.h"

namespace desmine::io {

/// The mapped layout's version tag (the current default save format).
inline constexpr std::uint32_t kMappedArtifactVersion = 4;
/// Fixed header size; the TOC offset/length live at fixed offsets inside it.
inline constexpr std::size_t kV4HeaderSize = 64;
/// Per-edge weight regions start on page boundaries so edges fault
/// independently and never share a dirty page.
inline constexpr std::size_t kV4PageAlign = 4096;
/// Every parameter tensor inside a weight region is 64-byte aligned.
inline constexpr std::size_t kV4WeightAlign = 64;

/// Typed corruption/truncation error for mapped artifacts. IS-A RuntimeError,
/// so callers that only care about "the artifact is bad" keep working; the
/// section tells tooling (desmine_inspect) and tests exactly which integrity
/// check failed.
class ArtifactError : public RuntimeError {
 public:
  enum class Section {
    kHeader,     ///< bad magic/version, header CRC mismatch
    kToc,        ///< TOC CRC mismatch or unparseable/out-of-bounds entries
    kMeta,       ///< a per-edge meta blob failed its CRC on first touch
    kWeights,    ///< a per-edge weight region failed its CRC on first touch
    kTruncated,  ///< file shorter than its header claims
  };

  ArtifactError(Section section, const std::string& message)
      : RuntimeError(message), section_(section) {}

  Section section() const { return section_; }

  static const char* section_name(Section s);

 private:
  Section section_;
};

/// Shape + absolute file offset of one parameter tensor (raw f32 row-major).
struct ParamExtent {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t off = 0;  ///< absolute file offset, kV4WeightAlign-aligned
};

/// One TOC entry: the edge's scores plus where its blobs live in the file.
struct EdgeEntry {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  double bleu = 0.0;
  double runtime_seconds = 0.0;
  bool has_model = false;
  std::uint64_t meta_off = 0;
  std::uint64_t meta_len = 0;
  std::uint32_t meta_crc = 0;
  std::uint64_t weights_off = 0;  ///< kV4PageAlign-aligned region start
  std::uint64_t weights_len = 0;
  std::uint32_t weights_crc = 0;
  std::vector<ParamExtent> params;  ///< registry order
};

/// Write a fitted framework as a v4 mapped artifact (crash-safe: staged +
/// fsync + atomic rename, like every stream artifact). Called by
/// io::save_framework for version 4; exposed for tests that need the writer
/// without the dispatch.
void write_framework_v4(const core::Framework& framework,
                        const std::string& path);

struct ArtifactMapOptions {
  /// Read the file into heap memory instead of mmap()ing it; every view,
  /// CRC and materialization path is byte-for-byte identical, only the
  /// backing storage differs. For platforms without mmap and for CI to
  /// prove the fallback stays live (also forced by the
  /// DESMINE_FORCE_HEAP_FALLBACK environment variable).
  bool force_heap = false;
};

/// A read-only mapping of one v4 artifact. Thread-safe: materialization and
/// first-touch CRC verification are serialized internally; concurrent reads
/// of already-materialized models need no coordination (pages are immutable).
class ArtifactMap : public std::enable_shared_from_this<ArtifactMap> {
 public:
  /// Map `path` and eagerly verify the header and TOC (magic, version,
  /// declared vs actual file size, both CRCs, every extent in bounds).
  /// Throws ArtifactError on any integrity failure and RuntimeError when the
  /// file cannot be opened. Cost is O(header + TOC): no weight page is
  /// touched.
  static std::shared_ptr<ArtifactMap> open(const std::string& path,
                                           const ArtifactMapOptions& options = {});

  ~ArtifactMap();
  ArtifactMap(const ArtifactMap&) = delete;
  ArtifactMap& operator=(const ArtifactMap&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t file_size() const { return size_; }
  /// False when the heap fallback is backing this map instead of mmap.
  bool mapped() const { return mapped_; }

  const core::WindowConfig& window() const { return window_; }
  const core::SensorEncrypter& encrypter() const { return *encrypter_; }
  const std::vector<std::string>& sensor_names() const { return sensor_names_; }
  const std::vector<EdgeEntry>& edges() const { return edges_; }
  const std::vector<core::PairFailure>& failures() const { return failures_; }

  /// Build the edge's model with weights bound as zero-copy views into the
  /// mapped pages. First touch verifies the edge's meta + weight CRCs
  /// (ArtifactError on mismatch) and faults its pages in; the returned model
  /// pins this map alive for its own lifetime. Each call builds a fresh
  /// model (decode state is per-instance); the underlying weight pages are
  /// shared. `index` is an index into edges(); the entry must have a model.
  std::shared_ptr<nmt::TranslationModel> materialize_edge(std::size_t index);

  /// Verify every model edge's meta + weight CRCs now — the eager
  /// counterpart of the lazy first-touch checks (ArtifactError naming the
  /// failing section). Hot reload and shadow arming call this so a corrupt
  /// candidate is rejected before it ever becomes a serving generation;
  /// cold-start open stays O(header+TOC) and verifies lazily.
  void verify_all();

  /// Bytes an edge's materialized decode state costs beyond the shared
  /// pages (vocabularies, config, model scaffolding) plus its mapped
  /// meta+weight extent — the unit serve::ResidencyManager budgets with.
  std::uint64_t edge_cost_bytes(std::size_t index) const;

  /// Materialize every edge into a fitted core::Framework (the v4 arm of
  /// io::load_framework). Window config comes from the artifact; detector /
  /// miner settings from `config_overlay`. The returned framework's models
  /// all pin this map.
  core::Framework materialize_framework(
      core::FrameworkConfig config_overlay = {});

 private:
  ArtifactMap() = default;

  const unsigned char* data() const;
  /// Verify an edge's meta+weight CRCs exactly once (under mutex).
  void verify_edge(std::size_t index);

  std::string path_;
  std::uint64_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;               // when mapped_
  std::vector<unsigned char> heap_copy_;   // heap fallback

  core::WindowConfig window_{};
  std::optional<core::SensorEncrypter> encrypter_;
  std::vector<std::string> sensor_names_;
  std::vector<EdgeEntry> edges_;
  std::vector<core::PairFailure> failures_;

  std::mutex verify_mutex_;
  std::vector<bool> verified_;  // per-edge first-touch CRC check done
};

}  // namespace desmine::io
