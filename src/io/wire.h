// io-internal little-endian stream primitives.
//
// Shared by the tagged stream serializer (serialize.cpp) and the mapped v4
// artifact layer (artifact_map.cpp): the v4 TOC and per-edge meta blobs are
// written with exactly these primitives, so the two layers can never drift
// on byte order or framing. Not part of the public io API.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.h"

namespace desmine::io::wire {

inline void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw RuntimeError("unexpected end of stream reading u32");
  return v;
}

inline void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw RuntimeError("unexpected end of stream reading u64");
  return v;
}

inline void write_f32(std::ostream& os, float v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline float read_f32(std::istream& is) {
  float v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw RuntimeError("unexpected end of stream reading f32");
  return v;
}

inline void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline double read_f64(std::istream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw RuntimeError("unexpected end of stream reading f64");
  return v;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw RuntimeError("unexpected end of stream reading string");
  return s;
}

}  // namespace desmine::io::wire
