// CSV ingestion/egress for multivariate discrete event sequences.
//
// Format: a header row of sensor names followed by one row per sampling
// tick, each cell holding that sensor's categorical state. A leading
// "timestamp" column (case-insensitive) is accepted and ignored — sampling
// is assumed even, as the paper requires (§II-A). Quoted fields with
// embedded commas/quotes follow RFC-4180.
#pragma once

#include <iosfwd>
#include <string>

#include "core/event.h"

namespace desmine::io {

/// Parse a series from a stream; throws RuntimeError on malformed input
/// (ragged rows, empty header).
core::MultivariateSeries parse_series_csv(std::istream& in);

/// Read a series from a file.
core::MultivariateSeries read_series_csv(const std::string& path);

/// Write a series (header + one row per tick).
void write_series_csv(std::ostream& out, const core::MultivariateSeries& series);
void write_series_csv(const std::string& path,
                      const core::MultivariateSeries& series);

}  // namespace desmine::io
