// CSV ingestion/egress for multivariate discrete event sequences.
//
// Format: a header row of sensor names followed by one row per sampling
// tick, each cell holding that sensor's categorical state. A leading
// "timestamp" column (case-insensitive) is accepted and ignored — sampling
// is assumed even, as the paper requires (§II-A). Quoted fields with
// embedded commas/quotes follow RFC-4180 (fields spanning multiple physical
// lines are not supported); a UTF-8 BOM before the header is stripped.
//
// Ingestion has a strict mode (default: any malformed row throws) and a
// tolerant mode (CsvOptions) for degraded-mode detection: malformed rows
// are skipped or quarantined instead of aborting the run. Quarantined rows
// keep their tick (every sensor's cell becomes empty, reported in
// CsvReport::missing_ticks so the sensor-health tracker can treat the tick
// as missing) and are journaled to a crash-safe JSON-lines file, one
// self-checksummed record per row. Skipped rows are removed entirely (the
// timeline contracts by one tick).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/event.h"

namespace desmine::io {

/// What to do with a malformed data row (wrong field count).
enum class OnBadRow {
  kThrow,       ///< strict: raise RuntimeError naming the row (default)
  kSkip,        ///< drop the row; the tick disappears from the series
  kQuarantine,  ///< journal the row; the tick stays, with empty cells
};

struct CsvOptions {
  OnBadRow on_bad_row = OnBadRow::kThrow;
  /// Tolerated malformed rows before the parse gives up with RuntimeError
  /// (a wholly-garbage file should not silently yield an empty series).
  std::size_t max_bad_rows = 1000;
  /// Quarantine journal path (JSON lines, one object per bad row with a
  /// crc32 of the raw line). Empty = count/report but do not journal.
  std::string quarantine_path;
};

/// Data-quality report of one tolerant parse.
struct CsvReport {
  std::size_t rows_total = 0;  ///< data rows seen (header/blank excluded)
  std::size_t rows_ok = 0;
  std::size_t rows_bad = 0;    ///< malformed rows skipped or quarantined
  /// Tick indices (series positions) preserved as missing — quarantine
  /// mode only; feed to core::window_health_mask / detect_degraded.
  std::vector<std::size_t> missing_ticks;
  /// 1-based physical row numbers of the malformed rows.
  std::vector<std::size_t> bad_row_numbers;
};

/// Parse a series from a stream; throws RuntimeError on malformed input
/// (ragged rows, empty header).
core::MultivariateSeries parse_series_csv(std::istream& in);

/// Tolerant parse: malformed rows are handled per `options`; `report`
/// (optional) receives the data-quality summary. Throws RuntimeError when
/// the header is unusable or more than options.max_bad_rows rows are bad.
core::MultivariateSeries parse_series_csv(std::istream& in,
                                          const CsvOptions& options,
                                          CsvReport* report = nullptr);

/// Read a series from a file (strict / tolerant).
core::MultivariateSeries read_series_csv(const std::string& path);
core::MultivariateSeries read_series_csv(const std::string& path,
                                         const CsvOptions& options,
                                         CsvReport* report = nullptr);

/// Write a series (header + one row per tick).
void write_series_csv(std::ostream& out, const core::MultivariateSeries& series);
void write_series_csv(const std::string& path,
                      const core::MultivariateSeries& series);

}  // namespace desmine::io
