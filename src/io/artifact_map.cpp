#include "io/artifact_map.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "io/serialize.h"
#include "io/wire.h"
#include "nmt/seq2seq.h"
#include "nn/param.h"
#include "tensor/matrix.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace desmine::io {

namespace {

using wire::read_f64;
using wire::read_string;
using wire::read_u32;
using wire::read_u64;
using wire::write_f64;
using wire::write_string;
using wire::write_u32;
using wire::write_u64;

constexpr char kMagic[4] = {'D', 'E', 'S', 'M'};
// Bytes [0,52) of the header are covered by header_crc at offset 52.
constexpr std::size_t kHeaderCrcSpan = 52;
// Estimated heap cost of one materialized edge beyond the shared pages:
// vocabulary maps, Param/layer scaffolding, decode caches' first growth.
constexpr std::uint64_t kEdgeOverheadBytes = 64 * 1024;

std::uint64_t align_up(std::uint64_t off, std::uint64_t alignment) {
  return (off + alignment - 1) / alignment * alignment;
}

void put_u32(std::string& buf, std::size_t off, std::uint32_t v) {
  std::memcpy(buf.data() + off, &v, sizeof(v));
}

void put_u64(std::string& buf, std::size_t off, std::uint64_t v) {
  std::memcpy(buf.data() + off, &v, sizeof(v));
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

const char* ArtifactError::section_name(Section s) {
  switch (s) {
    case Section::kHeader: return "header";
    case Section::kToc: return "toc";
    case Section::kMeta: return "meta";
    case Section::kWeights: return "weights";
    case Section::kTruncated: return "truncated";
  }
  return "unknown";
}

// ---- writer ----------------------------------------------------------------

void write_framework_v4(const core::Framework& framework,
                        const std::string& path) {
  DESMINE_EXPECTS(framework.fitted(), "cannot save an unfitted framework");
  const core::MvrGraph& graph = framework.graph();
  const auto& graph_edges = graph.edges();

  // Pass 1: serialize each model edge's meta blob and plan the weight
  // extents; offsets only, no weight bytes are touched yet.
  std::vector<EdgeEntry> entries(graph_edges.size());
  std::vector<std::string> metas(graph_edges.size());
  std::uint64_t off = kV4HeaderSize;
  for (std::size_t i = 0; i < graph_edges.size(); ++i) {
    const core::MvrEdge& e = graph_edges[i];
    EdgeEntry& entry = entries[i];
    entry.src = e.src;
    entry.dst = e.dst;
    entry.bleu = e.bleu;
    entry.runtime_seconds = e.runtime_seconds;
    entry.has_model = e.model != nullptr;
    if (!entry.has_model) continue;

    std::ostringstream meta(std::ios::binary);
    write_vocabulary(meta, e.model->src_vocab());
    write_vocabulary(meta, e.model->tgt_vocab());
    write_seq2seq_config(meta, e.model->model().config(),
                         kStreamArtifactVersion);
    metas[i] = std::move(meta).str();
    entry.meta_off = off;
    entry.meta_len = metas[i].size();
    entry.meta_crc = util::crc32(metas[i]);
    off += entry.meta_len;
  }
  for (std::size_t i = 0; i < graph_edges.size(); ++i) {
    const core::MvrEdge& e = graph_edges[i];
    if (e.model == nullptr) continue;
    EdgeEntry& entry = entries[i];
    off = align_up(off, kV4PageAlign);
    entry.weights_off = off;
    for (const nn::Param* p : e.model->model().params().params()) {
      off = align_up(off, kV4WeightAlign);
      entry.params.push_back(
          ParamExtent{p->rows(), p->cols(), off});
      off += static_cast<std::uint64_t>(p->size()) * sizeof(float);
    }
    entry.weights_len = off - entry.weights_off;
  }
  const std::uint64_t toc_off = off;

  // Pass 2: lay the body down (alignment gaps stay zero, so weight-region
  // CRCs are deterministic) and checksum each weight region in place.
  std::string body(toc_off, '\0');
  for (std::size_t i = 0; i < graph_edges.size(); ++i) {
    const core::MvrEdge& e = graph_edges[i];
    if (e.model == nullptr) continue;
    EdgeEntry& entry = entries[i];
    std::memcpy(body.data() + entry.meta_off, metas[i].data(),
                entry.meta_len);
    const auto& params = e.model->model().params().params();
    for (std::size_t k = 0; k < params.size(); ++k) {
      const tensor::ConstMatrixView w = params[k]->view();
      std::memcpy(body.data() + entry.params[k].off, w.data(),
                  w.rows() * w.cols() * sizeof(float));
    }
    entry.weights_crc = util::crc32(
        body.data() + entry.weights_off, entry.weights_len);
  }

  // Pass 3: the TOC, now that every extent and CRC is known.
  std::ostringstream toc_os(std::ios::binary);
  const core::WindowConfig& w = framework.config().window;
  write_u64(toc_os, w.word_length);
  write_u64(toc_os, w.word_stride);
  write_u64(toc_os, w.sentence_length);
  write_u64(toc_os, w.sentence_stride);
  write_encrypter(toc_os, framework.encrypter());
  write_u64(toc_os, graph.sensor_count());
  for (const std::string& name : graph.sensor_names()) {
    write_string(toc_os, name);
  }
  write_u64(toc_os, entries.size());
  for (const EdgeEntry& entry : entries) {
    write_u64(toc_os, entry.src);
    write_u64(toc_os, entry.dst);
    write_f64(toc_os, entry.bleu);
    write_f64(toc_os, entry.runtime_seconds);
    write_u32(toc_os, entry.has_model ? 1 : 0);
    if (!entry.has_model) continue;
    write_u64(toc_os, entry.meta_off);
    write_u64(toc_os, entry.meta_len);
    write_u32(toc_os, entry.meta_crc);
    write_u64(toc_os, entry.weights_off);
    write_u64(toc_os, entry.weights_len);
    write_u32(toc_os, entry.weights_crc);
    write_u64(toc_os, entry.params.size());
    for (const ParamExtent& x : entry.params) {
      write_u64(toc_os, x.rows);
      write_u64(toc_os, x.cols);
      write_u64(toc_os, x.off);
    }
  }
  write_u64(toc_os, graph.failures().size());
  for (const core::PairFailure& f : graph.failures()) {
    write_u64(toc_os, f.src);
    write_u64(toc_os, f.dst);
    write_string(toc_os, f.reason);
    write_u32(toc_os, f.attempts);
  }
  const std::string toc = std::move(toc_os).str();

  std::memcpy(body.data(), kMagic, 4);
  put_u32(body, 4, kMappedArtifactVersion);
  put_u64(body, 8, toc_off + toc.size());  // file_size
  put_u64(body, 16, toc_off);
  put_u64(body, 24, toc.size());
  put_u64(body, 32, entries.size());
  put_u64(body, 40, 0);  // reserved
  put_u32(body, 48, util::crc32(toc));
  put_u32(body, 52, util::crc32(body.data(), kHeaderCrcSpan));
  // bytes 56..63 stay zero (reserved)

  body += toc;
  write_file_atomic(path, body);
}

// ---- reader ----------------------------------------------------------------

std::shared_ptr<ArtifactMap> ArtifactMap::open(
    const std::string& path, const ArtifactMapOptions& options) {
  bool force_heap = options.force_heap;
  if (const char* env = std::getenv("DESMINE_FORCE_HEAP_FALLBACK");
      env != nullptr && *env != '\0' && std::string_view(env) != "0") {
    force_heap = true;
  }

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw RuntimeError("cannot open for reading: " + path + ": " +
                       std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw RuntimeError("cannot stat " + path + ": " + std::strerror(err));
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);

  std::shared_ptr<ArtifactMap> map(new ArtifactMap());
  map->path_ = path;
  map->size_ = size;
  if (size < kV4HeaderSize) {
    ::close(fd);
    throw ArtifactError(ArtifactError::Section::kTruncated,
                        "artifact shorter than the v4 header: " + path);
  }
  if (!force_heap) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (base != MAP_FAILED) {
      map->map_base_ = base;
      map->mapped_ = true;
    }
  }
  if (!map->mapped_) {
    map->heap_copy_.resize(size);
    std::uint64_t done = 0;
    while (done < size) {
      const ::ssize_t n =
          ::pread(fd, map->heap_copy_.data() + done, size - done,
                  static_cast<::off_t>(done));
      if (n <= 0) {
        const int err = errno;
        ::close(fd);
        throw RuntimeError("cannot read " + path + ": " +
                           (n == 0 ? "unexpected EOF" : std::strerror(err)));
      }
      done += static_cast<std::uint64_t>(n);
    }
  }
  // The mapping (or heap copy) carries the data from here on.
  ::close(fd);

  const unsigned char* d = map->data();
  if (std::memcmp(d, kMagic, 4) != 0) {
    throw ArtifactError(ArtifactError::Section::kHeader,
                        "not a desmine artifact (bad magic): " + path);
  }
  const std::uint32_t version = get_u32(d + 4);
  if (version != kMappedArtifactVersion) {
    throw ArtifactError(
        ArtifactError::Section::kHeader,
        "not a mapped (v4) artifact: version " + std::to_string(version) +
            " in " + path);
  }
  if (util::crc32(d, kHeaderCrcSpan) != get_u32(d + kHeaderCrcSpan)) {
    throw ArtifactError(ArtifactError::Section::kHeader,
                        "header checksum mismatch (corrupt header): " + path);
  }
  const std::uint64_t declared_size = get_u64(d + 8);
  if (declared_size != size) {
    throw ArtifactError(
        ArtifactError::Section::kTruncated,
        "artifact is " + std::to_string(size) + " bytes but its header "
            "declares " + std::to_string(declared_size) + ": " + path);
  }
  const std::uint64_t toc_off = get_u64(d + 16);
  const std::uint64_t toc_len = get_u64(d + 24);
  const std::uint64_t edge_count = get_u64(d + 32);
  if (toc_off < kV4HeaderSize || toc_len > size || toc_off > size - toc_len) {
    throw ArtifactError(ArtifactError::Section::kToc,
                        "TOC extent out of bounds: " + path);
  }
  const std::uint32_t toc_crc = get_u32(d + 48);
  if (util::crc32(d + toc_off, toc_len) != toc_crc) {
    throw ArtifactError(ArtifactError::Section::kToc,
                        "TOC checksum mismatch (corrupt TOC): " + path);
  }

  // Parse the (CRC-clean) TOC; any framing error past this point means the
  // writer and reader disagree, which we still surface as a TOC error.
  try {
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(d + toc_off), toc_len),
        std::ios::binary);
    map->window_.word_length = read_u64(is);
    map->window_.word_stride = read_u64(is);
    map->window_.sentence_length = read_u64(is);
    map->window_.sentence_stride = read_u64(is);
    map->encrypter_ = read_encrypter(is);
    const std::uint64_t sensor_count = read_u64(is);
    map->sensor_names_.reserve(sensor_count);
    for (std::uint64_t i = 0; i < sensor_count; ++i) {
      map->sensor_names_.push_back(read_string(is));
    }
    const std::uint64_t toc_edges = read_u64(is);
    if (toc_edges != edge_count) {
      throw RuntimeError("TOC edge count disagrees with header");
    }
    map->edges_.resize(toc_edges);
    for (EdgeEntry& e : map->edges_) {
      e.src = read_u64(is);
      e.dst = read_u64(is);
      e.bleu = read_f64(is);
      e.runtime_seconds = read_f64(is);
      e.has_model = read_u32(is) != 0;
      if (!e.has_model) continue;
      e.meta_off = read_u64(is);
      e.meta_len = read_u64(is);
      e.meta_crc = read_u32(is);
      e.weights_off = read_u64(is);
      e.weights_len = read_u64(is);
      e.weights_crc = read_u32(is);
      const std::uint64_t param_count = read_u64(is);
      if (param_count > 1024) {
        throw RuntimeError("implausible parameter count in TOC");
      }
      e.params.resize(param_count);
      for (ParamExtent& x : e.params) {
        x.rows = read_u64(is);
        x.cols = read_u64(is);
        x.off = read_u64(is);
      }
    }
    const std::uint64_t failure_count = read_u64(is);
    map->failures_.resize(failure_count);
    for (core::PairFailure& f : map->failures_) {
      f.src = read_u64(is);
      f.dst = read_u64(is);
      f.reason = read_string(is);
      f.attempts = read_u32(is);
    }
  } catch (const RuntimeError& e) {
    throw ArtifactError(ArtifactError::Section::kToc,
                        std::string("unparseable TOC: ") + e.what() + ": " +
                            path);
  }

  // Every extent the TOC points at must be inside the body, aligned as the
  // format promises, and internally consistent — checked once here so the
  // lazy materialization path can trust the entries.
  for (const EdgeEntry& e : map->edges_) {
    if (!e.has_model) continue;
    const bool meta_ok = e.meta_off >= kV4HeaderSize && e.meta_len <= toc_off &&
                         e.meta_off <= toc_off - e.meta_len;
    const bool weights_ok =
        e.weights_off % kV4PageAlign == 0 && e.weights_len <= toc_off &&
        e.weights_off >= kV4HeaderSize &&
        e.weights_off <= toc_off - e.weights_len;
    if (!meta_ok || !weights_ok) {
      throw ArtifactError(ArtifactError::Section::kToc,
                          "edge blob extent out of bounds: " + path);
    }
    for (const ParamExtent& x : e.params) {
      const std::uint64_t bytes = x.rows * x.cols * sizeof(float);
      const bool param_ok =
          x.rows < (1u << 24) && x.cols < (1u << 24) &&
          x.off % kV4WeightAlign == 0 && x.off >= e.weights_off &&
          bytes <= e.weights_len &&
          x.off <= e.weights_off + e.weights_len - bytes;
      if (!param_ok) {
        throw ArtifactError(ArtifactError::Section::kToc,
                            "parameter extent out of bounds: " + path);
      }
    }
  }
  map->verified_.assign(map->edges_.size(), false);
  return map;
}

ArtifactMap::~ArtifactMap() {
  if (mapped_) ::munmap(map_base_, size_);
}

const unsigned char* ArtifactMap::data() const {
  return mapped_ ? static_cast<const unsigned char*>(map_base_)
                 : heap_copy_.data();
}

void ArtifactMap::verify_edge(std::size_t index) {
  std::lock_guard<std::mutex> lock(verify_mutex_);
  if (verified_[index]) return;
  const EdgeEntry& e = edges_[index];
  if (util::crc32(data() + e.meta_off, e.meta_len) != e.meta_crc) {
    throw ArtifactError(
        ArtifactError::Section::kMeta,
        "meta blob checksum mismatch for edge " + std::to_string(e.src) +
            "->" + std::to_string(e.dst) + ": " + path_);
  }
  if (util::crc32(data() + e.weights_off, e.weights_len) != e.weights_crc) {
    throw ArtifactError(
        ArtifactError::Section::kWeights,
        "weight region checksum mismatch for edge " + std::to_string(e.src) +
            "->" + std::to_string(e.dst) + ": " + path_);
  }
  verified_[index] = true;
}

void ArtifactMap::verify_all() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].has_model) verify_edge(i);
  }
}

std::shared_ptr<nmt::TranslationModel> ArtifactMap::materialize_edge(
    std::size_t index) {
  DESMINE_EXPECTS(index < edges_.size(), "edge index out of range");
  const EdgeEntry& e = edges_[index];
  DESMINE_EXPECTS(e.has_model, "edge has no model to materialize");
  verify_edge(index);

  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data() + e.meta_off),
                  e.meta_len),
      std::ios::binary);
  text::Vocabulary src_vocab = read_vocabulary(is);
  text::Vocabulary tgt_vocab = read_vocabulary(is);
  const nmt::Seq2SeqConfig config =
      read_seq2seq_config(is, kStreamArtifactVersion);

  auto model = std::make_unique<nmt::Seq2SeqModel>(
      src_vocab.size(), tgt_vocab.size(), config, util::Rng(0), nullptr,
      nn::WeightStorage::kDeferred);
  auto& params = model->params().params();
  if (params.size() != e.params.size()) {
    throw ArtifactError(ArtifactError::Section::kToc,
                        "parameter count mismatch materializing edge " +
                            std::to_string(e.src) + "->" +
                            std::to_string(e.dst) + ": " + path_);
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    const ParamExtent& x = e.params[k];
    nn::Param* p = params[k];
    if (x.rows != p->rows() || x.cols != p->cols()) {
      throw ArtifactError(ArtifactError::Section::kToc,
                          "parameter shape mismatch for " + p->name + ": " +
                              path_);
    }
    p->bind(tensor::ConstMatrixView(
        reinterpret_cast<const float*>(data() + x.off), x.rows, x.cols));
  }

  auto translation = std::make_shared<nmt::TranslationModel>(
      std::move(src_vocab), std::move(tgt_vocab), std::move(model));
  translation->pin_storage(shared_from_this());
  return translation;
}

std::uint64_t ArtifactMap::edge_cost_bytes(std::size_t index) const {
  DESMINE_EXPECTS(index < edges_.size(), "edge index out of range");
  const EdgeEntry& e = edges_[index];
  return e.meta_len + e.weights_len + kEdgeOverheadBytes;
}

core::Framework ArtifactMap::materialize_framework(
    core::FrameworkConfig config_overlay) {
  config_overlay.window = window_;
  core::MvrGraph graph(sensor_names_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const EdgeEntry& entry = edges_[i];
    core::MvrEdge e;
    e.src = entry.src;
    e.dst = entry.dst;
    e.bleu = entry.bleu;
    e.runtime_seconds = entry.runtime_seconds;
    if (entry.has_model) e.model = materialize_edge(i);
    graph.add_edge(std::move(e));
  }
  for (const core::PairFailure& f : failures_) {
    graph.add_failure(f);
  }
  core::Framework framework(config_overlay);
  framework.restore(*encrypter_, std::move(graph));
  return framework;
}

}  // namespace desmine::io
