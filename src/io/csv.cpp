#include "io/csv.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "io/serialize.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "robust/fault_injector.h"
#include "util/crc32.h"
#include "util/error.h"

namespace desmine::io {

namespace {

/// Split one CSV record honoring RFC-4180 quoting.
std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool is_timestamp_header(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "timestamp" || lower == "time" || lower == "t";
}

/// One quarantined row as a flat JSON object with a self-checksum of the
/// raw line, so journal consumers can verify each record independently.
std::string quarantine_record(std::size_t row_number, std::size_t expected,
                              std::size_t got, const std::string& line) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("row").value(static_cast<std::uint64_t>(row_number));
  w.key("expected_fields").value(static_cast<std::uint64_t>(expected));
  w.key("got_fields").value(static_cast<std::uint64_t>(got));
  w.key("line").value(line);
  w.key("crc32").value(static_cast<std::uint64_t>(util::crc32(line)));
  w.end_object();
  return w.str();
}

}  // namespace

core::MultivariateSeries parse_series_csv(std::istream& in) {
  return parse_series_csv(in, CsvOptions{}, nullptr);
}

core::MultivariateSeries parse_series_csv(std::istream& in,
                                          const CsvOptions& options,
                                          CsvReport* report) {
  std::string line;
  if (!std::getline(in, line)) {
    throw RuntimeError("empty CSV: no header row");
  }
  // Strip a UTF-8 byte-order mark before the header (spreadsheet exports).
  if (line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
  const std::vector<std::string> header = split_csv_row(line);
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    throw RuntimeError("empty CSV header");
  }
  const bool skip_first = is_timestamp_header(header.front());
  const std::size_t first_col = skip_first ? 1 : 0;
  if (header.size() <= first_col) {
    throw RuntimeError("CSV header has no sensor columns");
  }

  core::MultivariateSeries series;
  for (std::size_t c = first_col; c < header.size(); ++c) {
    core::SensorSeries sensor;
    sensor.name = header[c];
    series.push_back(std::move(sensor));
  }

  CsvReport local;
  CsvReport& rep = report != nullptr ? *report : local;
  rep = CsvReport{};
  std::vector<std::string> journal_lines;

  std::size_t row_number = 1;
  while (std::getline(in, line)) {
    ++row_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++rep.rows_total;
    const std::vector<std::string> fields = split_csv_row(line);
    bool injected = false;
    switch (robust::fire_fault("csv.row",
                               static_cast<std::int64_t>(row_number))) {
      case robust::FaultAction::kThrow:
        throw RuntimeError("injected fault at csv.row for row " +
                           std::to_string(row_number));
      case robust::FaultAction::kDrop:
        injected = true;  // the keyed row parses as malformed
        break;
      default:
        break;
    }
    if (fields.size() != header.size() || injected) {
      if (options.on_bad_row == OnBadRow::kThrow) {
        throw RuntimeError("CSV row " + std::to_string(row_number) + " has " +
                           std::to_string(fields.size()) +
                           " fields, expected " +
                           std::to_string(header.size()));
      }
      ++rep.rows_bad;
      rep.bad_row_numbers.push_back(row_number);
      obs::metrics().counter("csv.rows_bad").inc();
      if (rep.rows_bad > options.max_bad_rows) {
        throw RuntimeError(
            "CSV has more than " + std::to_string(options.max_bad_rows) +
            " malformed rows (first bad row " +
            std::to_string(rep.bad_row_numbers.front()) +
            "); refusing to continue");
      }
      if (options.on_bad_row == OnBadRow::kQuarantine) {
        // Keep the tick so the timeline stays evenly sampled; the health
        // tracker sees it as missing via CsvReport::missing_ticks.
        rep.missing_ticks.push_back(series.front().events.size());
        for (core::SensorSeries& sensor : series) {
          sensor.events.emplace_back();
        }
        journal_lines.push_back(quarantine_record(
            row_number, header.size(), fields.size(), line));
        obs::metrics().counter("csv.rows_quarantined").inc();
      }
      continue;  // kSkip: the row (and its tick) simply disappears
    }
    ++rep.rows_ok;
    for (std::size_t c = first_col; c < fields.size(); ++c) {
      series[c - first_col].events.push_back(fields[c]);
    }
  }

  if (!journal_lines.empty() && !options.quarantine_path.empty()) {
    std::string payload;
    for (const std::string& l : journal_lines) {
      payload += l;
      payload += '\n';
    }
    // Crash-safe journal: temp file + fsync + atomic rename (same path
    // trained artifacts take), so a partial journal never appears.
    write_file_atomic(options.quarantine_path, payload);
  }
  return series;
}

core::MultivariateSeries read_series_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open for reading: " + path);
  return parse_series_csv(in);
}

core::MultivariateSeries read_series_csv(const std::string& path,
                                         const CsvOptions& options,
                                         CsvReport* report) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open for reading: " + path);
  return parse_series_csv(in, options, report);
}

void write_series_csv(std::ostream& out,
                      const core::MultivariateSeries& series) {
  const std::size_t len = core::series_length(series);
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (s > 0) out << ',';
    out << csv_escape(series[s].name);
  }
  out << '\n';
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      if (s > 0) out << ',';
      out << csv_escape(series[s].events[t]);
    }
    out << '\n';
  }
}

void write_series_csv(const std::string& path,
                      const core::MultivariateSeries& series) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open for writing: " + path);
  write_series_csv(out, series);
  if (!out) throw RuntimeError("write failed: " + path);
}

}  // namespace desmine::io
