#include "io/csv.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace desmine::io {

namespace {

/// Split one CSV record honoring RFC-4180 quoting.
std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool is_timestamp_header(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "timestamp" || lower == "time" || lower == "t";
}

}  // namespace

core::MultivariateSeries parse_series_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw RuntimeError("empty CSV: no header row");
  }
  const std::vector<std::string> header = split_csv_row(line);
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    throw RuntimeError("empty CSV header");
  }
  const bool skip_first = is_timestamp_header(header.front());
  const std::size_t first_col = skip_first ? 1 : 0;
  if (header.size() <= first_col) {
    throw RuntimeError("CSV header has no sensor columns");
  }

  core::MultivariateSeries series;
  for (std::size_t c = first_col; c < header.size(); ++c) {
    core::SensorSeries sensor;
    sensor.name = header[c];
    series.push_back(std::move(sensor));
  }

  std::size_t row_number = 1;
  while (std::getline(in, line)) {
    ++row_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_row(line);
    if (fields.size() != header.size()) {
      throw RuntimeError("CSV row " + std::to_string(row_number) + " has " +
                         std::to_string(fields.size()) + " fields, expected " +
                         std::to_string(header.size()));
    }
    for (std::size_t c = first_col; c < fields.size(); ++c) {
      series[c - first_col].events.push_back(fields[c]);
    }
  }
  return series;
}

core::MultivariateSeries read_series_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open for reading: " + path);
  return parse_series_csv(in);
}

void write_series_csv(std::ostream& out,
                      const core::MultivariateSeries& series) {
  const std::size_t len = core::series_length(series);
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (s > 0) out << ',';
    out << csv_escape(series[s].name);
  }
  out << '\n';
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      if (s > 0) out << ',';
      out << csv_escape(series[s].events[t]);
    }
    out << '\n';
  }
}

void write_series_csv(const std::string& path,
                      const core::MultivariateSeries& series) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open for writing: " + path);
  write_series_csv(out, series);
  if (!out) throw RuntimeError("write failed: " + path);
}

}  // namespace desmine::io
