#include "io/config_json.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "util/error.h"

namespace desmine::io {
namespace {

using obs::JsonValue;

[[noreturn]] void bad(const std::string& what) {
  throw PreconditionError("config: " + what);
}

// ---------------------------------------------------------------------------
// Emission. The tree is built as a JsonValue and pretty-printed so that
// --dump-config output is directly editable; parse_json reads it back.

JsonValue make_object() {
  JsonValue v;
  v.type = JsonValue::Type::kObject;
  return v;
}

void put_number(JsonValue& obj, const char* key, double value) {
  JsonValue v;
  v.type = JsonValue::Type::kNumber;
  v.number = value;
  obj.object.emplace_back(key, std::move(v));
}

void put_bool(JsonValue& obj, const char* key, bool value) {
  JsonValue v;
  v.type = JsonValue::Type::kBool;
  v.boolean = value;
  obj.object.emplace_back(key, std::move(v));
}

void put_string(JsonValue& obj, const char* key, std::string value) {
  JsonValue v;
  v.type = JsonValue::Type::kString;
  v.string = std::move(value);
  obj.object.emplace_back(key, std::move(v));
}

void put_object(JsonValue& obj, const char* key, JsonValue child) {
  obj.object.emplace_back(key, std::move(child));
}

void dump(const JsonValue& v, std::string& out, int depth) {
  const auto indent = [&](int d) { out.append(static_cast<std::size_t>(d) * 2, ' '); };
  switch (v.type) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Type::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", v.number);
      out += buf;
      break;
    }
    case JsonValue::Type::kString: out += obs::JsonWriter::quote(v.string); break;
    case JsonValue::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        indent(depth + 1);
        out += obs::JsonWriter::quote(v.object[i].first);
        out += ": ";
        dump(v.object[i].second, out, depth + 1);
        if (i + 1 < v.object.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += '}';
      break;
    }
    case JsonValue::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        indent(depth + 1);
        dump(v.array[i], out, depth + 1);
        if (i + 1 < v.array.size()) out += ',';
        out += '\n';
      }
      indent(depth);
      out += ']';
      break;
    }
  }
}

JsonValue bleu_to_json(const text::BleuOptions& bleu) {
  JsonValue v = make_object();
  put_number(v, "max_order", static_cast<double>(bleu.max_order));
  put_bool(v, "smooth", bleu.smooth);
  return v;
}

JsonValue window_to_json(const core::WindowConfig& w) {
  JsonValue v = make_object();
  put_number(v, "word_length", static_cast<double>(w.word_length));
  put_number(v, "word_stride", static_cast<double>(w.word_stride));
  put_number(v, "sentence_length", static_cast<double>(w.sentence_length));
  put_number(v, "sentence_stride", static_cast<double>(w.sentence_stride));
  return v;
}

JsonValue model_to_json(const nmt::Seq2SeqConfig& m) {
  JsonValue v = make_object();
  put_number(v, "embedding_dim", static_cast<double>(m.embedding_dim));
  put_number(v, "hidden_dim", static_cast<double>(m.hidden_dim));
  put_number(v, "num_layers", static_cast<double>(m.num_layers));
  put_number(v, "dropout", static_cast<double>(m.dropout));
  put_number(v, "init_scale", static_cast<double>(m.init_scale));
  put_number(v, "max_decode_length", static_cast<double>(m.max_decode_length));
  put_string(v, "attention",
             m.attention == nn::AttentionScore::kDot ? "dot" : "general");
  return v;
}

JsonValue trainer_to_json(const nmt::TrainerConfig& t) {
  JsonValue v = make_object();
  put_number(v, "steps", static_cast<double>(t.steps));
  put_number(v, "batch_size", static_cast<double>(t.batch_size));
  put_number(v, "lr", static_cast<double>(t.lr));
  put_number(v, "clip_norm", static_cast<double>(t.clip_norm));
  put_number(v, "lr_decay_start", static_cast<double>(t.lr_decay_start));
  put_number(v, "lr_decay_every", static_cast<double>(t.lr_decay_every));
  put_number(v, "eval_every", static_cast<double>(t.eval_every));
  put_number(v, "patience", static_cast<double>(t.patience));
  put_number(v, "divergence_factor", t.divergence_factor);
  return v;
}

JsonValue retry_to_json(const robust::RetryPolicy& r) {
  JsonValue v = make_object();
  put_number(v, "max_retries", static_cast<double>(r.max_retries));
  put_number(v, "base_delay_ms", r.base_delay_ms);
  put_number(v, "multiplier", r.multiplier);
  put_number(v, "max_delay_ms", r.max_delay_ms);
  put_number(v, "jitter", r.jitter);
  return v;
}

JsonValue miner_to_json(const core::MinerConfig& m) {
  JsonValue v = make_object();
  put_number(v, "threads", static_cast<double>(m.threads));
  put_number(v, "seed", static_cast<double>(m.seed));
  put_number(v, "pair_timeout_s", m.pair_timeout_s);
  put_string(v, "checkpoint_path", m.checkpoint_path);
  put_bool(v, "resume", m.resume);
  put_object(v, "retry", retry_to_json(m.retry));
  put_object(v, "model", model_to_json(m.translation.model));
  put_object(v, "trainer", trainer_to_json(m.translation.trainer));
  put_object(v, "bleu", bleu_to_json(m.translation.bleu));
  return v;
}

JsonValue detector_to_json(const core::DetectorConfig& d) {
  JsonValue v = make_object();
  put_number(v, "valid_lo", d.valid_lo);
  put_number(v, "valid_hi", d.valid_hi);
  put_number(v, "tolerance", d.tolerance);
  put_number(v, "min_coverage", d.min_coverage);
  put_number(v, "threads", static_cast<double>(d.threads));
  put_object(v, "bleu", bleu_to_json(d.bleu));
  return v;
}

JsonValue health_to_json(const robust::HealthConfig& h) {
  JsonValue v = make_object();
  put_number(v, "drop_after_missing", static_cast<double>(h.drop_after_missing));
  put_number(v, "stale_after", static_cast<double>(h.stale_after));
  put_number(v, "max_unk_rate", h.max_unk_rate);
  put_number(v, "unk_window", static_cast<double>(h.unk_window));
  put_number(v, "min_unk_samples", static_cast<double>(h.min_unk_samples));
  put_number(v, "readmit_after", static_cast<double>(h.readmit_after));
  return v;
}

JsonValue serve_to_json(const serve::ServeConfig& s) {
  JsonValue v = make_object();
  put_number(v, "workers", static_cast<double>(s.workers));
  put_number(v, "max_batch", static_cast<double>(s.max_batch));
  put_number(v, "decode_cache", static_cast<double>(s.decode_cache));
  put_number(v, "max_pending_windows",
             static_cast<double>(s.limits.max_pending_windows));
  put_bool(v, "reject_when_full", s.limits.reject_when_full);
  put_number(v, "max_consecutive_shed",
             static_cast<double>(s.limits.max_consecutive_shed));
  put_number(v, "max_global_pending",
             static_cast<double>(s.max_global_pending));
  put_number(v, "max_queue_delay_ms", s.max_queue_delay_ms);
  put_number(v, "circuit_open_after",
             static_cast<double>(s.circuit_open_after));
  put_number(v, "circuit_probe_after",
             static_cast<double>(s.circuit_probe_after));
  put_number(v, "telemetry_port", static_cast<double>(s.telemetry_port));
  put_number(v, "resident_bytes", static_cast<double>(s.resident_bytes));
  put_number(v, "resident_edges", static_cast<double>(s.resident_edges));
  put_number(v, "slow_window_ms", s.slow_window_ms);
  put_number(v, "sliding_window_s", s.sliding_window_s);
  put_number(v, "sliding_epochs", static_cast<double>(s.sliding_epochs));
  return v;
}

JsonValue drift_to_json(const lifecycle::DriftConfig& d) {
  JsonValue v = make_object();
  put_number(v, "ewma_alpha", d.ewma_alpha);
  put_number(v, "min_observations", static_cast<double>(d.min_observations));
  put_number(v, "hysteresis", static_cast<double>(d.hysteresis));
  put_number(v, "drifting_drop", d.drifting_drop);
  put_number(v, "drifted_drop", d.drifted_drop);
  put_number(v, "break_rate", d.break_rate);
  put_number(v, "max_unk_rate", d.max_unk_rate);
  return v;
}

JsonValue retrain_to_json(const lifecycle::RetrainConfig& r) {
  JsonValue v = make_object();
  put_number(v, "lr_factor", r.lr_factor);
  put_number(v, "steps", static_cast<double>(r.steps));
  put_string(v, "journal_path", r.journal_path);
  put_string(v, "warm_start_journal", r.warm_start_journal);
  return v;
}

JsonValue shadow_to_json(const serve::ShadowConfig& s) {
  JsonValue v = make_object();
  put_number(v, "sample_rate", s.sample_rate);
  put_number(v, "min_windows", static_cast<double>(s.min_windows));
  put_number(v, "alert_threshold", s.alert_threshold);
  put_number(v, "max_alert_rate", s.max_alert_rate);
  put_number(v, "min_agreement", s.min_agreement);
  put_number(v, "max_failures", static_cast<double>(s.max_failures));
  return v;
}

JsonValue tensor_to_json(const tensor::kernels::KernelConfig& t) {
  JsonValue v = make_object();
  put_string(v, "kernels", t.kernels);
  put_string(v, "precision", t.precision);
  return v;
}

JsonValue lifecycle_to_json(const lifecycle::LifecycleConfig& l) {
  JsonValue v = make_object();
  put_object(v, "drift", drift_to_json(l.drift));
  put_object(v, "retrain", retrain_to_json(l.retrain));
  put_object(v, "shadow", shadow_to_json(l.shadow));
  return v;
}

// ---------------------------------------------------------------------------
// Parsing. Every reader names the full dotted path of the key it rejects.

double number_at(const JsonValue& v, const std::string& path) {
  if (!v.is_number()) bad("key '" + path + "' must be a number");
  return v.number;
}

double positive_at(const JsonValue& v, const std::string& path) {
  const double d = number_at(v, path);
  if (!(d > 0.0)) bad("key '" + path + "' must be > 0");
  return d;
}

double nonneg_at(const JsonValue& v, const std::string& path) {
  const double d = number_at(v, path);
  if (!(d >= 0.0)) bad("key '" + path + "' must be >= 0");
  return d;
}

double fraction_at(const JsonValue& v, const std::string& path) {
  const double d = number_at(v, path);
  if (!(d >= 0.0 && d <= 1.0)) bad("key '" + path + "' must lie in [0, 1]");
  return d;
}

std::size_t uint_at(const JsonValue& v, const std::string& path) {
  const double d = number_at(v, path);
  if (d < 0.0 || d != std::floor(d) || d > 9007199254740992.0) {
    bad("key '" + path + "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::size_t positive_uint_at(const JsonValue& v, const std::string& path) {
  const std::size_t n = uint_at(v, path);
  if (n == 0) bad("key '" + path + "' must be > 0");
  return n;
}

bool bool_at(const JsonValue& v, const std::string& path) {
  if (!v.is_bool()) bad("key '" + path + "' must be a boolean");
  return v.boolean;
}

std::string string_at(const JsonValue& v, const std::string& path) {
  if (!v.is_string()) bad("key '" + path + "' must be a string");
  return v.string;
}

void expect_object(const JsonValue& v, const std::string& path) {
  if (!v.is_object()) bad("key '" + path + "' must be an object");
}

void parse_bleu(const JsonValue& v, const std::string& prefix,
                text::BleuOptions* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "max_order") {
      out->max_order = positive_uint_at(value, path);
    } else if (key == "smooth") {
      out->smooth = bool_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_window(const JsonValue& v, const std::string& prefix,
                  core::WindowConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "word_length") {
      out->word_length = positive_uint_at(value, path);
    } else if (key == "word_stride") {
      out->word_stride = positive_uint_at(value, path);
    } else if (key == "sentence_length") {
      out->sentence_length = positive_uint_at(value, path);
    } else if (key == "sentence_stride") {
      out->sentence_stride = positive_uint_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_model(const JsonValue& v, const std::string& prefix,
                 nmt::Seq2SeqConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "embedding_dim") {
      out->embedding_dim = positive_uint_at(value, path);
    } else if (key == "hidden_dim") {
      out->hidden_dim = positive_uint_at(value, path);
    } else if (key == "num_layers") {
      out->num_layers = positive_uint_at(value, path);
    } else if (key == "dropout") {
      const double d = fraction_at(value, path);
      if (d >= 1.0) bad("key '" + path + "' must lie in [0, 1)");
      out->dropout = static_cast<float>(d);
    } else if (key == "init_scale") {
      out->init_scale = static_cast<float>(positive_at(value, path));
    } else if (key == "max_decode_length") {
      out->max_decode_length = positive_uint_at(value, path);
    } else if (key == "attention") {
      const std::string name = string_at(value, path);
      if (name == "general") {
        out->attention = nn::AttentionScore::kGeneral;
      } else if (name == "dot") {
        out->attention = nn::AttentionScore::kDot;
      } else {
        bad("key '" + path + "' must be \"general\" or \"dot\"");
      }
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_trainer(const JsonValue& v, const std::string& prefix,
                   nmt::TrainerConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "steps") {
      out->steps = positive_uint_at(value, path);
    } else if (key == "batch_size") {
      out->batch_size = positive_uint_at(value, path);
    } else if (key == "lr") {
      out->lr = static_cast<float>(positive_at(value, path));
    } else if (key == "clip_norm") {
      out->clip_norm = static_cast<float>(nonneg_at(value, path));
    } else if (key == "lr_decay_start") {
      out->lr_decay_start = uint_at(value, path);
    } else if (key == "lr_decay_every") {
      out->lr_decay_every = uint_at(value, path);
    } else if (key == "eval_every") {
      out->eval_every = uint_at(value, path);
    } else if (key == "patience") {
      out->patience = positive_uint_at(value, path);
    } else if (key == "divergence_factor") {
      out->divergence_factor = nonneg_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_retry(const JsonValue& v, const std::string& prefix,
                 robust::RetryPolicy* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "max_retries") {
      out->max_retries = uint_at(value, path);
    } else if (key == "base_delay_ms") {
      out->base_delay_ms = nonneg_at(value, path);
    } else if (key == "multiplier") {
      const double d = number_at(value, path);
      if (!(d >= 1.0)) bad("key '" + path + "' must be >= 1");
      out->multiplier = d;
    } else if (key == "max_delay_ms") {
      out->max_delay_ms = nonneg_at(value, path);
    } else if (key == "jitter") {
      out->jitter = fraction_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_miner(const JsonValue& v, const std::string& prefix,
                 core::MinerConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "threads") {
      out->threads = uint_at(value, path);
    } else if (key == "seed") {
      out->seed = static_cast<std::uint64_t>(uint_at(value, path));
    } else if (key == "pair_timeout_s") {
      out->pair_timeout_s = nonneg_at(value, path);
    } else if (key == "checkpoint_path") {
      out->checkpoint_path = string_at(value, path);
    } else if (key == "resume") {
      out->resume = bool_at(value, path);
    } else if (key == "retry") {
      parse_retry(value, path, &out->retry);
    } else if (key == "model") {
      parse_model(value, path, &out->translation.model);
    } else if (key == "trainer") {
      parse_trainer(value, path, &out->translation.trainer);
    } else if (key == "bleu") {
      parse_bleu(value, path, &out->translation.bleu);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_detector(const JsonValue& v, const std::string& prefix,
                    core::DetectorConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "valid_lo") {
      out->valid_lo = number_at(value, path);
    } else if (key == "valid_hi") {
      out->valid_hi = number_at(value, path);
    } else if (key == "tolerance") {
      out->tolerance = nonneg_at(value, path);
    } else if (key == "min_coverage") {
      out->min_coverage = fraction_at(value, path);
    } else if (key == "threads") {
      out->threads = uint_at(value, path);
    } else if (key == "bleu") {
      parse_bleu(value, path, &out->bleu);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
  if (out->valid_lo > out->valid_hi) {
    bad("key '" + prefix + ".valid_lo' must be <= '" + prefix + ".valid_hi'");
  }
}

void parse_health(const JsonValue& v, const std::string& prefix,
                  robust::HealthConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "drop_after_missing") {
      out->drop_after_missing = positive_uint_at(value, path);
    } else if (key == "stale_after") {
      out->stale_after = uint_at(value, path);
    } else if (key == "max_unk_rate") {
      out->max_unk_rate = fraction_at(value, path);
    } else if (key == "unk_window") {
      out->unk_window = positive_uint_at(value, path);
    } else if (key == "min_unk_samples") {
      out->min_unk_samples = positive_uint_at(value, path);
    } else if (key == "readmit_after") {
      out->readmit_after = positive_uint_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_serve(const JsonValue& v, const std::string& prefix,
                 serve::ServeConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "workers") {
      out->workers = uint_at(value, path);
    } else if (key == "max_batch") {
      out->max_batch = positive_uint_at(value, path);
    } else if (key == "decode_cache") {
      out->decode_cache = uint_at(value, path);
    } else if (key == "max_pending_windows") {
      out->limits.max_pending_windows = positive_uint_at(value, path);
    } else if (key == "reject_when_full") {
      out->limits.reject_when_full = bool_at(value, path);
    } else if (key == "max_consecutive_shed") {
      out->limits.max_consecutive_shed = positive_uint_at(value, path);
    } else if (key == "max_global_pending") {
      out->max_global_pending = uint_at(value, path);
    } else if (key == "max_queue_delay_ms") {
      out->max_queue_delay_ms = nonneg_at(value, path);
    } else if (key == "circuit_open_after") {
      out->circuit_open_after = uint_at(value, path);
    } else if (key == "circuit_probe_after") {
      out->circuit_probe_after = positive_uint_at(value, path);
    } else if (key == "telemetry_port") {
      out->telemetry_port = uint_at(value, path);
      if (out->telemetry_port > 65535) bad("key '" + path + "' must be <= 65535");
    } else if (key == "resident_bytes") {
      out->resident_bytes = uint_at(value, path);
    } else if (key == "resident_edges") {
      out->resident_edges = uint_at(value, path);
    } else if (key == "slow_window_ms") {
      out->slow_window_ms = nonneg_at(value, path);
    } else if (key == "sliding_window_s") {
      out->sliding_window_s = positive_at(value, path);
    } else if (key == "sliding_epochs") {
      out->sliding_epochs = positive_uint_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_drift(const JsonValue& v, const std::string& prefix,
                 lifecycle::DriftConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "ewma_alpha") {
      const double d = fraction_at(value, path);
      if (!(d > 0.0)) bad("key '" + path + "' must lie in (0, 1]");
      out->ewma_alpha = d;
    } else if (key == "min_observations") {
      out->min_observations = positive_uint_at(value, path);
    } else if (key == "hysteresis") {
      out->hysteresis = positive_uint_at(value, path);
    } else if (key == "drifting_drop") {
      out->drifting_drop = nonneg_at(value, path);
    } else if (key == "drifted_drop") {
      out->drifted_drop = nonneg_at(value, path);
    } else if (key == "break_rate") {
      out->break_rate = fraction_at(value, path);
    } else if (key == "max_unk_rate") {
      out->max_unk_rate = fraction_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
  if (out->drifting_drop > out->drifted_drop) {
    bad("key '" + prefix + ".drifting_drop' must be <= '" + prefix +
        ".drifted_drop'");
  }
}

void parse_retrain(const JsonValue& v, const std::string& prefix,
                   lifecycle::RetrainConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "lr_factor") {
      out->lr_factor = positive_at(value, path);
    } else if (key == "steps") {
      out->steps = uint_at(value, path);
    } else if (key == "journal_path") {
      out->journal_path = string_at(value, path);
    } else if (key == "warm_start_journal") {
      out->warm_start_journal = string_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_shadow(const JsonValue& v, const std::string& prefix,
                  serve::ShadowConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "sample_rate") {
      out->sample_rate = positive_at(value, path);
    } else if (key == "min_windows") {
      out->min_windows = positive_uint_at(value, path);
    } else if (key == "alert_threshold") {
      out->alert_threshold = fraction_at(value, path);
    } else if (key == "max_alert_rate") {
      out->max_alert_rate = fraction_at(value, path);
    } else if (key == "min_agreement") {
      out->min_agreement = fraction_at(value, path);
    } else if (key == "max_failures") {
      out->max_failures = uint_at(value, path);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_tensor(const JsonValue& v, const std::string& prefix,
                  tensor::kernels::KernelConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "kernels") {
      const std::string name = string_at(value, path);
      tensor::kernels::Backend backend;
      if (name != "auto" && !tensor::kernels::parse_backend(name, &backend)) {
        bad("key '" + path +
            "' must be \"auto\", \"scalar\", \"blocked\", or \"avx2\"");
      }
      out->kernels = name;
    } else if (key == "precision") {
      const std::string name = string_at(value, path);
      tensor::Precision precision;
      if (!tensor::parse_precision(name, &precision)) {
        bad("key '" + path + "' must be \"f32\" or \"int8\"");
      }
      out->precision = name;
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

void parse_lifecycle(const JsonValue& v, const std::string& prefix,
                     lifecycle::LifecycleConfig* out) {
  expect_object(v, prefix);
  for (const auto& [key, value] : v.object) {
    const std::string path = prefix + "." + key;
    if (key == "drift") {
      parse_drift(value, path, &out->drift);
    } else if (key == "retrain") {
      parse_retrain(value, path, &out->retrain);
    } else if (key == "shadow") {
      parse_shadow(value, path, &out->shadow);
    } else {
      bad("unknown key '" + path + "'");
    }
  }
}

}  // namespace

std::string run_config_to_json(const RunConfig& config) {
  JsonValue doc = make_object();
  put_object(doc, "window", window_to_json(config.framework.window));
  put_object(doc, "miner", miner_to_json(config.framework.miner));
  put_object(doc, "detector", detector_to_json(config.framework.detector));
  put_object(doc, "health", health_to_json(config.health));
  put_object(doc, "tensor", tensor_to_json(config.tensor));
  put_object(doc, "serve", serve_to_json(config.serve));
  put_object(doc, "lifecycle", lifecycle_to_json(config.lifecycle));
  std::string out;
  dump(doc, out, 0);
  out += '\n';
  return out;
}

RunConfig run_config_from_json(std::string_view text) {
  const JsonValue doc = obs::parse_json(text);
  if (!doc.is_object()) bad("document must be a JSON object");
  RunConfig config;
  for (const auto& [key, value] : doc.object) {
    if (key == "window") {
      parse_window(value, key, &config.framework.window);
    } else if (key == "miner") {
      parse_miner(value, key, &config.framework.miner);
    } else if (key == "detector") {
      parse_detector(value, key, &config.framework.detector);
    } else if (key == "health") {
      parse_health(value, key, &config.health);
    } else if (key == "tensor") {
      parse_tensor(value, key, &config.tensor);
    } else if (key == "serve") {
      parse_serve(value, key, &config.serve);
    } else if (key == "lifecycle") {
      parse_lifecycle(value, key, &config.lifecycle);
    } else {
      bad("unknown key '" + key + "'");
    }
  }
  config.serve.detector = config.framework.detector;
  config.serve.shadow = config.lifecycle.shadow;
  // tensor.precision was name-validated by parse_tensor, so this parse
  // cannot fail; the serving layer then decodes under the configured mode.
  tensor::Precision precision = tensor::Precision::kF32;
  tensor::parse_precision(config.tensor.precision, &precision);
  config.serve.precision = precision;
  return config;
}

RunConfig load_run_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PreconditionError("config: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return run_config_from_json(buffer.str());
  } catch (const PreconditionError& e) {
    throw PreconditionError(std::string(e.what()) + " (in '" + path +
                                  "')");
  } catch (const RuntimeError& e) {
    throw PreconditionError(std::string(e.what()) + " (in '" + path +
                                  "')");
  }
}

}  // namespace desmine::io
