// JSON round-trip for the run configuration (ISSUE 5 satellite).
//
// RunConfig bundles everything a tool run is parameterised by: the
// FrameworkConfig (window / miner / detector), the degraded-mode
// HealthConfig, the serving-layer ServeConfig, and the continual-mining
// LifecycleConfig (DESIGN.md §14). run_config_to_json
// emits a pretty-printed document with every knob at its current value —
// `desmine_cli --dump-config` uses it to print a complete, editable
// starting point. run_config_from_json parses and validates strictly:
// unknown keys and out-of-range values throw PreconditionError
// naming the offending dotted key (e.g. "miner.trainer.stepz"), so a typo
// never silently falls back to a default. Keys that are simply absent keep
// their defaults, which makes partial override files work.
//
// Deliberately NOT covered: callback hooks (MinerConfig::on_pair,
// should_abort), ServeConfig::detector (the detector section is the
// single source of truth; callers mirror it into ServeConfig themselves,
// as run_config_from_json already does), ServeConfig::shadow (mirrored
// from lifecycle.shadow the same way), ServeConfig::precision (mirrored
// from tensor.precision), and RetrainConfig::seed (a test determinism
// knob, not an operator-facing one).
#pragma once

#include <string>
#include <string_view>

#include "core/framework.h"
#include "lifecycle/controller.h"
#include "robust/sensor_health.h"
#include "serve/session_manager.h"
#include "tensor/kernels.h"

namespace desmine::io {

struct RunConfig {
  core::FrameworkConfig framework{};
  robust::HealthConfig health{};
  /// serve.detector is kept mirrored from framework.detector rather than
  /// serialized separately; serve.shadow is mirrored from lifecycle.shadow.
  serve::ServeConfig serve{};
  lifecycle::LifecycleConfig lifecycle{};
  /// Compute-kernel backend + decode precision (DESIGN.md §16). Parsing
  /// validates the names only; availability (e.g. avx2 on a non-AVX2 CPU)
  /// is checked when a tool applies the choice via
  /// tensor::kernels::apply_kernel_config, so a config file written on one
  /// machine still parses on another. serve.precision mirrors
  /// tensor.precision.
  tensor::kernels::KernelConfig tensor{};
};

/// Pretty-printed JSON document covering every RunConfig knob.
std::string run_config_to_json(const RunConfig& config);

/// Parse a config document produced by run_config_to_json (or any subset of
/// it). Throws PreconditionError naming the dotted key for unknown
/// keys, type mismatches, and out-of-range values; RuntimeError for
/// malformed JSON.
RunConfig run_config_from_json(std::string_view text);

/// Read `path` and run_config_from_json its contents; errors mention the
/// file path.
RunConfig load_run_config(const std::string& path);

}  // namespace desmine::io
