// Binary serialization for trained artifacts.
//
// A mined multivariate relationship graph holds hundreds of trained NMT
// models; persisting it lets the offline training phase (Algorithm 1) run
// once while detection, knowledge-discovery and benchmark tooling reload the
// artifact. The format is a simple tagged little-endian stream:
//   magic "DESM" | u32 version | payload
// Matrices are dims + raw f32; vocabularies are token lists; models are
// config + parameter tensors in registry order (which is deterministic).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/encryption.h"
#include "core/framework.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "text/vocabulary.h"

namespace desmine::io {

// ---- primitive + component (de)serializers, exposed for tests -------------

void write_matrix(std::ostream& os, const tensor::Matrix& m);
tensor::Matrix read_matrix(std::istream& is);

void write_vocabulary(std::ostream& os, const text::Vocabulary& v);
text::Vocabulary read_vocabulary(std::istream& is);

/// Current artifact format version. v2 added the attention kind to the
/// serialized model config; v1 artifacts load with kGeneral attention.
inline constexpr std::uint32_t kArtifactVersion = 2;

void write_translation_model(std::ostream& os, nmt::TranslationModel& model,
                             const nmt::Seq2SeqConfig& config);
nmt::TranslationModel read_translation_model(
    std::istream& is, std::uint32_t version = kArtifactVersion);

void write_mvr_graph(std::ostream& os, const core::MvrGraph& graph,
                     const nmt::Seq2SeqConfig& config);
core::MvrGraph read_mvr_graph(std::istream& is,
                              std::uint32_t version = kArtifactVersion);

void write_encrypter(std::ostream& os, const core::SensorEncrypter& enc);
core::SensorEncrypter read_encrypter(std::istream& is);

// ---- whole-framework snapshot ----------------------------------------------

/// Persist a fitted framework (window config, encrypter, graph + models) so
/// detection can resume in another process. Throws RuntimeError on I/O
/// failure and PreconditionError if the framework is not fitted.
void save_framework(const core::Framework& framework, const std::string& path);

/// Reload a snapshot. The returned framework is fitted and ready to detect.
/// Detector/miner settings not needed for inference are restored from
/// `config_overlay` (pass the same FrameworkConfig used at save time, or a
/// default one and adjust the detector band afterwards).
core::Framework load_framework(const std::string& path,
                               core::FrameworkConfig config_overlay = {});

}  // namespace desmine::io
