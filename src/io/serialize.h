// Binary serialization for trained artifacts.
//
// A mined multivariate relationship graph holds hundreds of trained NMT
// models; persisting it lets the offline training phase (Algorithm 1) run
// once while detection, knowledge-discovery and benchmark tooling reload the
// artifact. The format is a simple tagged little-endian stream:
//   magic "DESM" | u32 version | payload [| "CRC1" u32 crc   (v3+)]
// Matrices are dims + raw f32; vocabularies are token lists; models are
// config + parameter tensors in registry order (which is deterministic).
//
// Artifacts are written crash-safely: the full payload is staged to a temp
// file in the destination directory, flushed and fsynced, then atomically
// renamed over the target, so a crash can never leave a half-written
// artifact under the final name. v3 files end with a CRC-32 trailer that is
// verified on load; a truncated or bit-flipped artifact raises RuntimeError
// instead of loading silently wrong model weights.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/encryption.h"
#include "core/framework.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "text/vocabulary.h"

namespace desmine::io {

// ---- primitive + component (de)serializers, exposed for tests -------------

void write_matrix(std::ostream& os, const tensor::Matrix& m);
tensor::Matrix read_matrix(std::istream& is);

void write_vocabulary(std::ostream& os, const text::Vocabulary& v);
text::Vocabulary read_vocabulary(std::istream& is);

/// Current artifact format version. v2 added the attention kind to the
/// serialized model config (v1 artifacts load with kGeneral attention);
/// v3 added the CRC-32 integrity trailer and the mined graph's permanently
/// failed pairs. v1/v2 artifacts still load (without CRC verification).
inline constexpr std::uint32_t kArtifactVersion = 3;

void write_translation_model(std::ostream& os, nmt::TranslationModel& model,
                             const nmt::Seq2SeqConfig& config);
nmt::TranslationModel read_translation_model(
    std::istream& is, std::uint32_t version = kArtifactVersion);

void write_mvr_graph(std::ostream& os, const core::MvrGraph& graph,
                     const nmt::Seq2SeqConfig& config);
core::MvrGraph read_mvr_graph(std::istream& is,
                              std::uint32_t version = kArtifactVersion);

void write_encrypter(std::ostream& os, const core::SensorEncrypter& enc);
core::SensorEncrypter read_encrypter(std::istream& is);

// ---- crash-safe file primitives -------------------------------------------

/// Write `payload` verbatim to `path` via temp file + flush + fsync + atomic
/// rename (+ directory fsync). Throws RuntimeError on any I/O failure; on
/// failure the previous contents of `path` (if any) are untouched. Used for
/// any file that must appear all-or-nothing (quarantine journals, traces).
void write_file_atomic(const std::string& path, std::string_view payload);

/// Write `payload` + CRC-32 trailer to `path` via write_file_atomic. Throws
/// RuntimeError on any I/O failure; on failure the previous contents of
/// `path` (if any) are untouched.
void write_artifact_file(const std::string& path, std::string_view payload);

/// Read a whole artifact file. For v3+ payloads (decided by the version
/// field after the magic) the CRC trailer is verified and stripped; any
/// truncation or corruption raises RuntimeError.
std::string read_artifact_file(const std::string& path);

// ---- single pair-model artifacts (checkpoint sidecars) --------------------

/// Persist one trained pair model as a standalone crash-safe artifact
/// (used by the miner's checkpoint journal).
void save_pair_model(const std::string& path, nmt::TranslationModel& model,
                     const nmt::Seq2SeqConfig& config);

/// Reload a pair-model artifact written by save_pair_model. Throws
/// RuntimeError if the file is missing, truncated, or corrupt.
nmt::TranslationModel load_pair_model(const std::string& path);

// ---- whole-framework snapshot ----------------------------------------------

/// Persist a fitted framework (window config, encrypter, graph + models) so
/// detection can resume in another process. Throws RuntimeError on I/O
/// failure and PreconditionError if the framework is not fitted.
void save_framework(const core::Framework& framework, const std::string& path);

/// Reload a snapshot. The returned framework is fitted and ready to detect.
/// Detector/miner settings not needed for inference are restored from
/// `config_overlay` (pass the same FrameworkConfig used at save time, or a
/// default one and adjust the detector band afterwards).
core::Framework load_framework(const std::string& path,
                               core::FrameworkConfig config_overlay = {});

}  // namespace desmine::io
