// Binary serialization for trained artifacts.
//
// A mined multivariate relationship graph holds hundreds of trained NMT
// models; persisting it lets the offline training phase (Algorithm 1) run
// once while detection, knowledge-discovery and benchmark tooling reload the
// artifact. Two layouts share the "DESM" magic + u32 version discipline:
//
//  * v1–v3 — a simple tagged little-endian stream:
//      magic "DESM" | u32 version | payload [| "CRC1" u32 crc   (v3)]
//    Matrices are dims + raw f32; vocabularies are token lists; models are
//    config + parameter tensors in registry order (deterministic). v2 added
//    the attention kind, v3 the CRC-32 trailer + permanently failed pairs.
//  * v4 — the mapped, page-aligned layout (io/artifact_map.h): fixed
//    64-byte header, per-edge meta blobs, 64-byte-aligned raw f32 weight
//    regions on 4096-byte pages, and a fixed-offset TOC, so serving mmap()s
//    the file and scores through zero-copy weight views (DESIGN.md §15).
//
// Artifacts are written crash-safely: the full payload is staged to a temp
// file in the destination directory, flushed and fsynced, then atomically
// renamed over the target, so a crash can never leave a half-written
// artifact under the final name. Corruption never loads silently: v3 streams
// verify the whole-file CRC trailer eagerly, v4 verifies header + TOC CRCs
// at open and each edge's meta/weight CRCs on first touch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/encryption.h"
#include "core/framework.h"
#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "tensor/matrix.h"
#include "text/vocabulary.h"

namespace desmine::io {

/// Current (default) artifact format version: v4, the mapped layout.
inline constexpr std::uint32_t kArtifactVersion = 4;

/// Newest *stream* layout. Pair-model checkpoint sidecars and the v4 TOC's
/// per-edge meta blobs are serialized with these semantics; older stream
/// versions (1, 2) are still readable and writable (cross-version tests).
inline constexpr std::uint32_t kStreamArtifactVersion = 3;

// ---- primitive + component (de)serializers, exposed for tests -------------

void write_matrix(std::ostream& os, tensor::ConstMatrixView m);
tensor::Matrix read_matrix(std::istream& is);

void write_vocabulary(std::ostream& os, const text::Vocabulary& v);
text::Vocabulary read_vocabulary(std::istream& is);

void write_seq2seq_config(std::ostream& os, const nmt::Seq2SeqConfig& c,
                          std::uint32_t version = kStreamArtifactVersion);
nmt::Seq2SeqConfig read_seq2seq_config(std::istream& is,
                                       std::uint32_t version);

/// Stream header: magic "DESM" + the format version being written.
void write_header(std::ostream& os,
                  std::uint32_t version = kStreamArtifactVersion);

/// Validate the magic and return the stream's version (1..kArtifactVersion).
/// Every reader takes its version from here — read_translation_model /
/// read_mvr_graph deliberately have NO defaulted version parameter, so a
/// caller can never silently skip header parsing.
std::uint32_t read_header(std::istream& is);

void write_translation_model(std::ostream& os, nmt::TranslationModel& model,
                             const nmt::Seq2SeqConfig& config,
                             std::uint32_t version = kStreamArtifactVersion);
nmt::TranslationModel read_translation_model(std::istream& is,
                                             std::uint32_t version);

void write_mvr_graph(std::ostream& os, const core::MvrGraph& graph,
                     const nmt::Seq2SeqConfig& config,
                     std::uint32_t version = kStreamArtifactVersion);
core::MvrGraph read_mvr_graph(std::istream& is, std::uint32_t version);

void write_encrypter(std::ostream& os, const core::SensorEncrypter& enc);
core::SensorEncrypter read_encrypter(std::istream& is);

// ---- crash-safe file primitives -------------------------------------------

/// Write `payload` verbatim to `path` via temp file + flush + fsync + atomic
/// rename (+ directory fsync). Throws RuntimeError on any I/O failure; on
/// failure the previous contents of `path` (if any) are untouched. Used for
/// any file that must appear all-or-nothing (quarantine journals, traces).
void write_file_atomic(const std::string& path, std::string_view payload);

/// Write `payload` + CRC-32 trailer to `path` via write_file_atomic. Throws
/// RuntimeError on any I/O failure; on failure the previous contents of
/// `path` (if any) are untouched.
void write_artifact_file(const std::string& path, std::string_view payload);

/// Read a whole *stream* artifact file. For v3 payloads (decided by the
/// version field after the magic) the CRC trailer is verified and stripped;
/// any truncation or corruption raises RuntimeError. v4 artifacts are
/// mapped, not streamed — passing one here raises io::ArtifactError (open
/// them via io::ArtifactMap or load_framework, which dispatches).
std::string read_artifact_file(const std::string& path);

/// Magic-check `path` and return its artifact version without reading the
/// payload (first 8 bytes only). Throws RuntimeError when the file is
/// missing, shorter than a header, or not a desmine artifact.
std::uint32_t peek_artifact_version(const std::string& path);

// ---- single pair-model artifacts (checkpoint sidecars) --------------------

/// Persist one trained pair model as a standalone crash-safe artifact
/// (used by the miner's checkpoint journal). Always the newest stream
/// layout (v3): sidecars are single models, which gain nothing from pages.
void save_pair_model(const std::string& path, nmt::TranslationModel& model,
                     const nmt::Seq2SeqConfig& config);

/// Reload a pair-model artifact written by save_pair_model. Throws
/// RuntimeError if the file is missing, truncated, or corrupt.
nmt::TranslationModel load_pair_model(const std::string& path);

// ---- whole-framework snapshot ----------------------------------------------

/// Persist a fitted framework (window config, encrypter, graph + models) so
/// detection can resume in another process. `version` selects the layout:
/// 4 (default) writes the mapped page-aligned artifact, 1–3 the matching
/// stream layout (cross-version tooling and tests). Throws RuntimeError on
/// I/O failure and PreconditionError if the framework is not fitted.
void save_framework(const core::Framework& framework, const std::string& path,
                    std::uint32_t version = kArtifactVersion);

/// Reload a snapshot of any version. v4 artifacts are opened via
/// io::ArtifactMap (header + TOC verified, weights mapped and bound as
/// zero-copy views); v1–v3 deserialize into owned heap tensors. Either way
/// the returned framework is fitted, ready to detect, and scores
/// bit-identically. Detector/miner settings not needed for inference are
/// restored from `config_overlay` (pass the same FrameworkConfig used at
/// save time, or a default one and adjust the detector band afterwards).
core::Framework load_framework(const std::string& path,
                               core::FrameworkConfig config_overlay = {});

}  // namespace desmine::io
