#include "io/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/artifact_map.h"
#include "io/wire.h"
#include "robust/fault_injector.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/rng.h"

namespace desmine::io {

namespace {

constexpr char kMagic[4] = {'D', 'E', 'S', 'M'};
constexpr char kCrcMagic[4] = {'C', 'R', 'C', '1'};
constexpr std::size_t kCrcTrailerSize = 8;  // magic + u32 crc

using wire::read_f64;
using wire::read_string;
using wire::read_u32;
using wire::read_u64;
using wire::write_f32;
using wire::write_f64;
using wire::write_string;
using wire::write_u32;
using wire::write_u64;

}  // namespace

void write_header(std::ostream& os, std::uint32_t version) {
  DESMINE_EXPECTS(version >= 1 && version <= kArtifactVersion,
                  "unknown artifact version to write");
  os.write(kMagic, 4);
  write_u32(os, version);
}

std::uint32_t read_header(std::istream& is) {
  char magic[4] = {};
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw RuntimeError("not a desmine artifact (bad magic)");
  }
  const std::uint32_t version = read_u32(is);
  if (version < 1 || version > kArtifactVersion) {
    throw RuntimeError("unsupported artifact version " +
                       std::to_string(version));
  }
  return version;
}

void write_seq2seq_config(std::ostream& os, const nmt::Seq2SeqConfig& c,
                          std::uint32_t version) {
  write_u64(os, c.embedding_dim);
  write_u64(os, c.hidden_dim);
  write_u64(os, c.num_layers);
  write_f32(os, c.dropout);
  write_f32(os, c.init_scale);
  write_u64(os, c.max_decode_length);
  if (version >= 2) {
    write_u32(os, static_cast<std::uint32_t>(c.attention));
  }
}

nmt::Seq2SeqConfig read_seq2seq_config(std::istream& is,
                                       std::uint32_t version) {
  nmt::Seq2SeqConfig c;
  c.embedding_dim = read_u64(is);
  c.hidden_dim = read_u64(is);
  c.num_layers = read_u64(is);
  is.read(reinterpret_cast<char*>(&c.dropout), sizeof(float));
  is.read(reinterpret_cast<char*>(&c.init_scale), sizeof(float));
  c.max_decode_length = read_u64(is);
  if (!is) throw RuntimeError("unexpected end of stream reading config");
  if (version >= 2) {
    c.attention = static_cast<nn::AttentionScore>(read_u32(is));
  }
  return c;
}

void write_matrix(std::ostream& os, tensor::ConstMatrixView m) {
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

tensor::Matrix read_matrix(std::istream& is) {
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  // Sanity cap: no desmine tensor is anywhere near this large; a corrupt or
  // foreign stream fails here rather than in the allocator.
  if (rows > (1u << 24) || cols > (1u << 24) || rows * cols > (1ull << 30)) {
    throw RuntimeError("implausible matrix dimensions in artifact");
  }
  tensor::Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is) throw RuntimeError("unexpected end of stream reading matrix");
  return m;
}

void write_vocabulary(std::ostream& os, const text::Vocabulary& v) {
  // The four specials are implicit (ids 0..3); persist the rest in order.
  write_u64(os, v.size() - 4);
  for (std::size_t id = 4; id < v.size(); ++id) {
    write_string(os, v.token(static_cast<std::int32_t>(id)));
  }
}

text::Vocabulary read_vocabulary(std::istream& is) {
  const std::uint64_t extra = read_u64(is);
  text::Corpus corpus;
  text::Sentence all;
  all.reserve(extra);
  for (std::uint64_t i = 0; i < extra; ++i) all.push_back(read_string(is));
  corpus.push_back(std::move(all));
  return text::Vocabulary::build(corpus);
}

void write_translation_model(std::ostream& os, nmt::TranslationModel& model,
                             const nmt::Seq2SeqConfig& config,
                             std::uint32_t version) {
  write_vocabulary(os, model.src_vocab());
  write_vocabulary(os, model.tgt_vocab());
  write_seq2seq_config(os, config, version);
  const auto& params = model.model().params().params();
  write_u64(os, params.size());
  // Weights are read through view(), so a mapped (v4) model deep-copies to
  // an owned stream artifact exactly like a heap model.
  for (const nn::Param* p : params) write_matrix(os, p->view());
}

nmt::TranslationModel read_translation_model(std::istream& is,
                                             std::uint32_t version) {
  text::Vocabulary src_vocab = read_vocabulary(is);
  text::Vocabulary tgt_vocab = read_vocabulary(is);
  const nmt::Seq2SeqConfig config = read_seq2seq_config(is, version);

  auto model = std::make_unique<nmt::Seq2SeqModel>(
      src_vocab.size(), tgt_vocab.size(), config, util::Rng(0));
  auto& params = model->params().params();
  const std::uint64_t count = read_u64(is);
  if (count != params.size()) {
    throw RuntimeError("parameter count mismatch in artifact");
  }
  for (nn::Param* p : params) {
    tensor::Matrix m = read_matrix(is);
    if (!m.same_shape(p->value)) {
      throw RuntimeError("parameter shape mismatch for " + p->name);
    }
    p->value = std::move(m);
  }
  return nmt::TranslationModel(std::move(src_vocab), std::move(tgt_vocab),
                               std::move(model));
}

void write_mvr_graph(std::ostream& os, const core::MvrGraph& graph,
                     const nmt::Seq2SeqConfig& config,
                     std::uint32_t version) {
  write_u64(os, graph.sensor_count());
  for (const std::string& name : graph.sensor_names()) {
    write_string(os, name);
  }
  write_u64(os, graph.edges().size());
  for (const core::MvrEdge& e : graph.edges()) {
    write_u64(os, e.src);
    write_u64(os, e.dst);
    write_f64(os, e.bleu);
    write_f64(os, e.runtime_seconds);
    write_u32(os, e.model ? 1 : 0);
    if (e.model) write_translation_model(os, *e.model, config, version);
  }
  if (version >= 3) {
    // v3: permanently failed pairs (absent edges with a reason).
    write_u64(os, graph.failures().size());
    for (const core::PairFailure& f : graph.failures()) {
      write_u64(os, f.src);
      write_u64(os, f.dst);
      write_string(os, f.reason);
      write_u32(os, f.attempts);
    }
  }
}

core::MvrGraph read_mvr_graph(std::istream& is, std::uint32_t version) {
  const std::uint64_t n = read_u64(is);
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) names.push_back(read_string(is));
  core::MvrGraph graph(std::move(names));

  const std::uint64_t edges = read_u64(is);
  for (std::uint64_t i = 0; i < edges; ++i) {
    core::MvrEdge e;
    e.src = read_u64(is);
    e.dst = read_u64(is);
    e.bleu = read_f64(is);
    e.runtime_seconds = read_f64(is);
    const bool has_model = read_u32(is) != 0;
    if (has_model) {
      e.model = std::make_shared<nmt::TranslationModel>(
          read_translation_model(is, version));
    }
    graph.add_edge(std::move(e));
  }
  if (version >= 3) {
    const std::uint64_t failures = read_u64(is);
    for (std::uint64_t i = 0; i < failures; ++i) {
      core::PairFailure f;
      f.src = read_u64(is);
      f.dst = read_u64(is);
      f.reason = read_string(is);
      f.attempts = read_u32(is);
      graph.add_failure(std::move(f));
    }
  }
  return graph;
}

void write_encrypter(std::ostream& os, const core::SensorEncrypter& enc) {
  write_u64(os, enc.kept_sensors().size());
  for (const std::string& name : enc.kept_sensors()) {
    const auto& encoding = enc.encoding(name);
    write_string(os, encoding.sensor);
    write_u64(os, encoding.to_char.size());
    for (const auto& [state, letter] : encoding.to_char) {
      write_string(os, state);
      os.put(letter);
    }
  }
  write_u64(os, enc.dropped_sensors().size());
  for (const std::string& name : enc.dropped_sensors()) {
    write_string(os, name);
  }
}

core::SensorEncrypter read_encrypter(std::istream& is) {
  const std::uint64_t kept = read_u64(is);
  std::vector<core::SensorEncrypter::Encoding> encodings;
  encodings.reserve(kept);
  for (std::uint64_t i = 0; i < kept; ++i) {
    core::SensorEncrypter::Encoding e;
    e.sensor = read_string(is);
    const std::uint64_t states = read_u64(is);
    for (std::uint64_t s = 0; s < states; ++s) {
      std::string state = read_string(is);
      const int letter = is.get();
      if (letter == std::char_traits<char>::eof()) {
        throw RuntimeError("unexpected end of stream reading encoding");
      }
      e.to_char.emplace(std::move(state), static_cast<char>(letter));
    }
    encodings.push_back(std::move(e));
  }
  const std::uint64_t dropped = read_u64(is);
  std::vector<std::string> dropped_names;
  dropped_names.reserve(dropped);
  for (std::uint64_t i = 0; i < dropped; ++i) {
    dropped_names.push_back(read_string(is));
  }
  return core::SensorEncrypter::from_encodings(std::move(encodings),
                                               std::move(dropped_names));
}

void write_file_atomic(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw RuntimeError("cannot open for writing: " + tmp + ": " +
                       std::strerror(errno));
  }
  bool ok = std::fwrite(payload.data(), 1, payload.size(), f) ==
            payload.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw RuntimeError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw RuntimeError("cannot rename " + tmp + " -> " + path + ": " +
                       std::strerror(errno));
  }
  // fsync the directory so the rename itself survives a crash.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." :
                          path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void write_artifact_file(const std::string& path, std::string_view payload) {
  const std::uint32_t crc = util::crc32(payload);
  std::string bytes(payload);
  bytes.append(kCrcMagic, 4);
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  write_file_atomic(path, bytes);
}

std::string read_artifact_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw RuntimeError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string bytes = std::move(buf).str();

  // The version field (after the 4-byte magic) decides whether a CRC
  // trailer is required; the header itself is validated by read_header.
  if (bytes.size() < 8) {
    throw RuntimeError("artifact truncated (no header): " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (std::memcmp(bytes.data(), kMagic, 4) == 0) {
    if (version >= 4) {
      // The mapped layout has internal header/TOC/extent CRCs instead of a
      // stream trailer; parsing it as a stream would misread the payload.
      throw ArtifactError(ArtifactError::Section::kHeader,
                          "version " + std::to_string(version) +
                              " artifact is mapped, not streamed — open it "
                              "via io::ArtifactMap or load_framework: " +
                              path);
    }
    if (version == 3) {
      if (bytes.size() < 8 + kCrcTrailerSize ||
          std::memcmp(bytes.data() + bytes.size() - kCrcTrailerSize, kCrcMagic,
                      4) != 0) {
        throw RuntimeError("artifact truncated (missing CRC trailer): " +
                           path);
      }
      std::uint32_t stored = 0;
      std::memcpy(&stored, bytes.data() + bytes.size() - 4, sizeof(stored));
      bytes.resize(bytes.size() - kCrcTrailerSize);
      const std::uint32_t actual = util::crc32(bytes);
      if (stored != actual) {
        throw RuntimeError(
            "artifact checksum mismatch (corrupt or truncated): " + path);
      }
    }
  }
  return bytes;
}

std::uint32_t peek_artifact_version(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw RuntimeError("cannot open for reading: " + path);
  char head[8] = {};
  is.read(head, sizeof(head));
  if (is.gcount() != sizeof(head)) {
    throw RuntimeError("artifact truncated (no header): " + path);
  }
  if (std::memcmp(head, kMagic, 4) != 0) {
    throw RuntimeError("not a desmine artifact (bad magic): " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, head + 4, sizeof(version));
  return version;
}

void save_pair_model(const std::string& path, nmt::TranslationModel& model,
                     const nmt::Seq2SeqConfig& config) {
  std::ostringstream os(std::ios::binary);
  write_header(os, kStreamArtifactVersion);
  write_translation_model(os, model, config, kStreamArtifactVersion);
  if (!os) throw RuntimeError("serialization failed for " + path);
  write_artifact_file(path, os.str());
}

nmt::TranslationModel load_pair_model(const std::string& path) {
  if (robust::fire_fault("model.load", 0) == robust::FaultAction::kThrow) {
    throw RuntimeError("injected fault at model.load for " + path);
  }
  std::istringstream is(read_artifact_file(path), std::ios::binary);
  const std::uint32_t version = read_header(is);
  return read_translation_model(is, version);
}

void save_framework(const core::Framework& framework, const std::string& path,
                    std::uint32_t version) {
  DESMINE_EXPECTS(framework.fitted(), "cannot save an unfitted framework");
  DESMINE_EXPECTS(version >= 1 && version <= kArtifactVersion,
                  "unknown artifact version to write");
  if (version == kMappedArtifactVersion) {
    write_framework_v4(framework, path);
    return;
  }

  std::ostringstream os(std::ios::binary);
  write_header(os, version);

  const core::WindowConfig& w = framework.config().window;
  write_u64(os, w.word_length);
  write_u64(os, w.word_stride);
  write_u64(os, w.sentence_length);
  write_u64(os, w.sentence_stride);

  write_encrypter(os, framework.encrypter());
  write_mvr_graph(os, framework.graph(),
                  framework.config().miner.translation.model, version);
  if (!os) throw RuntimeError("serialization failed for " + path);
  // Only the v3 stream carries the CRC trailer; v1/v2 predate it.
  if (version >= 3) {
    write_artifact_file(path, os.str());
  } else {
    write_file_atomic(path, os.str());
  }
}

core::Framework load_framework(const std::string& path,
                               core::FrameworkConfig config_overlay) {
  if (robust::fire_fault("model.load", 0) == robust::FaultAction::kThrow) {
    throw RuntimeError("injected fault at model.load for " + path);
  }
  if (peek_artifact_version(path) == kMappedArtifactVersion) {
    // Mapped open: header + TOC verified eagerly, models bound as zero-copy
    // views; the returned models pin the map for their lifetime.
    return ArtifactMap::open(path)->materialize_framework(
        std::move(config_overlay));
  }
  std::istringstream is(read_artifact_file(path), std::ios::binary);
  const std::uint32_t version = read_header(is);

  config_overlay.window.word_length = read_u64(is);
  config_overlay.window.word_stride = read_u64(is);
  config_overlay.window.sentence_length = read_u64(is);
  config_overlay.window.sentence_stride = read_u64(is);

  core::SensorEncrypter encrypter = read_encrypter(is);
  core::MvrGraph graph = read_mvr_graph(is, version);

  core::Framework framework(config_overlay);
  framework.restore(std::move(encrypter), std::move(graph));
  return framework;
}

}  // namespace desmine::io
