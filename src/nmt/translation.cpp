#include "nmt/translation.h"

#include <map>
#include <utility>

#include "obs/trace.h"
#include "util/error.h"

namespace desmine::nmt {

TranslationModel::TranslationModel(text::Vocabulary src_vocab,
                                   text::Vocabulary tgt_vocab,
                                   std::unique_ptr<Seq2SeqModel> model)
    : src_vocab_(std::move(src_vocab)),
      tgt_vocab_(std::move(tgt_vocab)),
      model_(std::move(model)) {
  DESMINE_EXPECTS(model_ != nullptr, "translation model must be non-null");
}

text::Sentence TranslationModel::translate(const text::Sentence& source) {
  const std::vector<std::int32_t> ids = src_vocab_.encode(source);
  return tgt_vocab_.decode(model_->translate(ids));
}

text::BleuBreakdown TranslationModel::score(const text::Corpus& source,
                                            const text::Corpus& reference,
                                            const text::BleuOptions& options) {
  DESMINE_EXPECTS(source.size() == reference.size(),
                  "source/reference corpora must align");
  text::Corpus candidates;
  candidates.reserve(source.size());
  for (const text::Sentence& s : source) candidates.push_back(translate(s));
  return text::corpus_bleu(candidates, reference, options);
}

std::vector<text::Sentence> TranslationModel::translate_batch(
    const std::vector<const text::Sentence*>& sources) {
  DESMINE_EXPECTS(!sources.empty(), "cannot translate an empty batch");
  // Dedup on encoded ids: greedy decoding is deterministic, so one decode
  // serves every occurrence and the fan-out stays bit-identical.
  std::vector<std::vector<std::int32_t>> encoded;
  std::vector<std::size_t> slot(sources.size());
  std::map<std::vector<std::int32_t>, std::size_t> seen;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    DESMINE_EXPECTS(sources[i] != nullptr, "null source sentence");
    std::vector<std::int32_t> ids = src_vocab_.encode(*sources[i]);
    const auto [it, inserted] = seen.emplace(std::move(ids), encoded.size());
    if (inserted) encoded.push_back(it->first);
    slot[i] = it->second;
  }
  std::vector<const std::vector<std::int32_t>*> unique_ptrs;
  unique_ptrs.reserve(encoded.size());
  for (const auto& ids : encoded) unique_ptrs.push_back(&ids);
  const std::vector<std::vector<std::int32_t>> decoded =
      model_->translate_batch(unique_ptrs);

  std::vector<text::Sentence> out;
  out.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    out.push_back(tgt_vocab_.decode(decoded[slot[i]]));
  }
  return out;
}

std::vector<double> TranslationModel::score_batch(
    const std::vector<const text::Sentence*>& sources,
    const std::vector<const text::Sentence*>& references,
    const text::BleuOptions& options) {
  DESMINE_EXPECTS(sources.size() == references.size(),
                  "source/reference batches must align");
  const std::vector<text::Sentence> candidates = translate_batch(sources);
  std::vector<double> scores(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    DESMINE_EXPECTS(references[i] != nullptr, "null reference sentence");
    scores[i] =
        text::sentence_bleu(candidates[i], *references[i], options).score;
  }
  return scores;
}

std::vector<EncodedPair> encode_pairs(const text::Vocabulary& src_vocab,
                                      const text::Vocabulary& tgt_vocab,
                                      const text::Corpus& source,
                                      const text::Corpus& target) {
  DESMINE_EXPECTS(source.size() == target.size(),
                  "parallel corpora must align");
  std::vector<EncodedPair> pairs;
  pairs.reserve(source.size());
  for (std::size_t s = 0; s < source.size(); ++s) {
    pairs.push_back({src_vocab.encode(source[s]), tgt_vocab.encode(target[s])});
  }
  return pairs;
}

TranslationModel train_translation_model(const text::Corpus& train_source,
                                         const text::Corpus& train_target,
                                         const TranslationConfig& config,
                                         std::uint64_t seed,
                                         TrainingHistory* history,
                                         tensor::Workspace* workspace) {
  DESMINE_EXPECTS(!train_source.empty(), "training corpus must be non-empty");
  text::Vocabulary src_vocab = text::Vocabulary::build(train_source);
  text::Vocabulary tgt_vocab = text::Vocabulary::build(train_target);

  util::Rng rng(seed);
  auto model = std::make_unique<Seq2SeqModel>(
      src_vocab.size(), tgt_vocab.size(), config.model, rng.fork(1),
      workspace);
  const std::vector<EncodedPair> pairs =
      encode_pairs(src_vocab, tgt_vocab, train_source, train_target);
  {
    obs::Span span("train");
    TrainingHistory h = train(*model, pairs, config.trainer, rng.fork(2));
    span.annotate(obs::kv("steps", h.steps_run));
    span.annotate(obs::kv("final_loss", h.final_loss));
    if (history) *history = std::move(h);
  }

  return TranslationModel(std::move(src_vocab), std::move(tgt_vocab),
                          std::move(model));
}

}  // namespace desmine::nmt
