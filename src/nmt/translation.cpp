#include "nmt/translation.h"

#include "obs/trace.h"
#include "util/error.h"

namespace desmine::nmt {

TranslationModel::TranslationModel(text::Vocabulary src_vocab,
                                   text::Vocabulary tgt_vocab,
                                   std::unique_ptr<Seq2SeqModel> model)
    : src_vocab_(std::move(src_vocab)),
      tgt_vocab_(std::move(tgt_vocab)),
      model_(std::move(model)) {
  DESMINE_EXPECTS(model_ != nullptr, "translation model must be non-null");
}

text::Sentence TranslationModel::translate(const text::Sentence& source) {
  const std::vector<std::int32_t> ids = src_vocab_.encode(source);
  return tgt_vocab_.decode(model_->translate(ids));
}

text::BleuBreakdown TranslationModel::score(const text::Corpus& source,
                                            const text::Corpus& reference,
                                            const text::BleuOptions& options) {
  DESMINE_EXPECTS(source.size() == reference.size(),
                  "source/reference corpora must align");
  text::Corpus candidates;
  candidates.reserve(source.size());
  for (const text::Sentence& s : source) candidates.push_back(translate(s));
  return text::corpus_bleu(candidates, reference, options);
}

std::vector<EncodedPair> encode_pairs(const text::Vocabulary& src_vocab,
                                      const text::Vocabulary& tgt_vocab,
                                      const text::Corpus& source,
                                      const text::Corpus& target) {
  DESMINE_EXPECTS(source.size() == target.size(),
                  "parallel corpora must align");
  std::vector<EncodedPair> pairs;
  pairs.reserve(source.size());
  for (std::size_t s = 0; s < source.size(); ++s) {
    pairs.push_back({src_vocab.encode(source[s]), tgt_vocab.encode(target[s])});
  }
  return pairs;
}

TranslationModel train_translation_model(const text::Corpus& train_source,
                                         const text::Corpus& train_target,
                                         const TranslationConfig& config,
                                         std::uint64_t seed,
                                         TrainingHistory* history,
                                         tensor::Workspace* workspace) {
  DESMINE_EXPECTS(!train_source.empty(), "training corpus must be non-empty");
  text::Vocabulary src_vocab = text::Vocabulary::build(train_source);
  text::Vocabulary tgt_vocab = text::Vocabulary::build(train_target);

  util::Rng rng(seed);
  auto model = std::make_unique<Seq2SeqModel>(
      src_vocab.size(), tgt_vocab.size(), config.model, rng.fork(1),
      workspace);
  const std::vector<EncodedPair> pairs =
      encode_pairs(src_vocab, tgt_vocab, train_source, train_target);
  {
    obs::Span span("train");
    TrainingHistory h = train(*model, pairs, config.trainer, rng.fork(2));
    span.annotate(obs::kv("steps", h.steps_run));
    span.annotate(obs::kv("final_loss", h.final_loss));
    if (history) *history = std::move(h);
  }

  return TranslationModel(std::move(src_vocab), std::move(tgt_vocab),
                          std::move(model));
}

}  // namespace desmine::nmt
