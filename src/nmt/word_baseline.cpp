#include "nmt/word_baseline.h"

#include <algorithm>

#include "util/error.h"

namespace desmine::nmt {

WordBaseline WordBaseline::fit(const text::Corpus& train_source,
                               const text::Corpus& train_target) {
  DESMINE_EXPECTS(train_source.size() == train_target.size(),
                  "parallel corpora must align");
  DESMINE_EXPECTS(!train_source.empty(), "training corpus must be non-empty");

  WordBaseline model;
  for (std::size_t s = 0; s < train_source.size(); ++s) {
    const text::Sentence& src = train_source[s];
    const text::Sentence& tgt = train_target[s];
    const std::size_t len = std::min(src.size(), tgt.size());
    if (model.per_position_.size() < len) model.per_position_.resize(len);
    for (std::size_t k = 0; k < len; ++k) {
      PositionModel& pos = model.per_position_[k];
      ++pos.conditional[src[k]][tgt[k]];
      ++pos.marginal[tgt[k]];
    }
  }
  return model;
}

const std::string* WordBaseline::argmax(
    const std::map<std::string, std::size_t>& counts) {
  const std::string* best = nullptr;
  std::size_t best_count = 0;
  for (const auto& [word, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = &word;
    }
  }
  return best;
}

text::Sentence WordBaseline::translate(const text::Sentence& source) const {
  text::Sentence out;
  const std::size_t len = std::min(source.size(), per_position_.size());
  out.reserve(len);
  for (std::size_t k = 0; k < len; ++k) {
    const PositionModel& pos = per_position_[k];
    const auto it = pos.conditional.find(source[k]);
    const std::string* word = it != pos.conditional.end()
                                  ? argmax(it->second)
                                  : argmax(pos.marginal);
    DESMINE_ENSURES(word != nullptr, "trained position has no counts");
    out.push_back(*word);
  }
  return out;
}

text::BleuBreakdown WordBaseline::score(const text::Corpus& source,
                                        const text::Corpus& reference,
                                        const text::BleuOptions& options) const {
  DESMINE_EXPECTS(source.size() == reference.size(),
                  "source/reference corpora must align");
  text::Corpus candidates;
  candidates.reserve(source.size());
  for (const text::Sentence& s : source) candidates.push_back(translate(s));
  return text::corpus_bleu(candidates, reference, options);
}

}  // namespace desmine::nmt
