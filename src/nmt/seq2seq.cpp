#include "nmt/seq2seq.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "nn/loss.h"
#include "obs/log.h"
#include "util/error.h"

namespace desmine::nmt {

namespace {

/// Transpose a batch of equal-length sequences into per-timestep id vectors.
std::vector<std::vector<std::int32_t>> to_timesteps(
    const std::vector<const EncodedPair*>& batch, bool source) {
  const std::size_t len =
      source ? batch.front()->source.size() : batch.front()->target.size();
  std::vector<std::vector<std::int32_t>> steps(
      len, std::vector<std::int32_t>(batch.size()));
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const auto& seq = source ? batch[b]->source : batch[b]->target;
    DESMINE_EXPECTS(seq.size() == len,
                    "all sequences in a batch must share one length");
    for (std::size_t t = 0; t < len; ++t) steps[t][b] = seq[t];
  }
  return steps;
}

}  // namespace

Seq2SeqModel::Seq2SeqModel(std::size_t src_vocab, std::size_t tgt_vocab,
                           const Seq2SeqConfig& config, util::Rng rng,
                           tensor::Workspace* workspace,
                           nn::WeightStorage storage)
    : config_(config),
      rng_(rng),
      storage_(storage),
      src_embed_(src_vocab, config.embedding_dim, rng_, config.init_scale,
                 storage),
      tgt_embed_(tgt_vocab, config.embedding_dim, rng_, config.init_scale,
                 storage),
      encoder_("enc", config.embedding_dim, config.hidden_dim,
               config.num_layers, rng_, config.dropout, config.init_scale,
               storage),
      decoder_("dec", config.embedding_dim, config.hidden_dim,
               config.num_layers, rng_, config.dropout, config.init_scale,
               storage),
      attention_("attn", config.hidden_dim, rng_, config.init_scale,
                 config.attention, storage),
      out_("out", config.hidden_dim, tgt_vocab, rng_, /*with_bias=*/true,
           config.init_scale, storage),
      ws_(workspace != nullptr ? workspace : &own_ws_) {
  DESMINE_EXPECTS(src_vocab > text::Vocabulary::kEos &&
                      tgt_vocab > text::Vocabulary::kEos,
                  "vocabs must include the special tokens");
  src_embed_.register_params(registry_);
  tgt_embed_.register_params(registry_);
  encoder_.register_params(registry_);
  decoder_.register_params(registry_);
  attention_.register_params(registry_);
  out_.register_params(registry_);
}

void Seq2SeqModel::reserve_workspace(std::size_t max_src_len,
                                     std::size_t max_tgt_len,
                                     std::size_t batch) {
  const std::size_t B = batch;
  const std::size_t E = config_.embedding_dim;
  const std::size_t H = config_.hidden_dim;
  const std::size_t L = config_.num_layers;
  const std::size_t V = tgt_vocab();
  const std::size_t S = max_src_len;
  const std::size_t T = max_tgt_len + 1;  // +1 for the </s> step
  // Per-step LSTM footprint: input copy + mask + 7 gate/cell caches per
  // layer, plus the transient 4H pre-activation. Attention adds transformed
  // + d_encoder (per source position) and h_dec/align/concat/attn per target
  // step; the output layer adds dlogits per step. Backward adds dx per step
  // plus per-layer running gradients. Doubled for slack — over-reserving
  // only costs address space in one chunk.
  const std::size_t lstm_step = 2 * (E + (L - 1) * H) + 7 * L * H + 4 * H;
  const std::size_t per_src = lstm_step + 2 * H + E;     // + attention accums, dx
  const std::size_t per_tgt = lstm_step + 5 * H + 2 * S  // + attention caches
                              + 2 * V + E;               // + dlogits/logits, dx
  const std::size_t fixed = 8 * L * H + 8 * H;           // running BPTT grads
  const std::size_t floats = B * (S * per_src + T * per_tgt + fixed);
  ws_->reserve(2 * floats * sizeof(float));
}

double Seq2SeqModel::run_teacher_forced(
    const std::vector<const EncodedPair*>& batch, bool train) {
  DESMINE_EXPECTS(!batch.empty(), "empty batch");
  const std::size_t B = batch.size();
  const auto src_steps = to_timesteps(batch, /*source=*/true);
  const auto tgt_steps = to_timesteps(batch, /*source=*/false);
  const std::size_t S = src_steps.size();
  const std::size_t T = tgt_steps.size() + 1;  // +1 for the </s> step
  DESMINE_EXPECTS(S > 0 && tgt_steps.size() > 0, "sequences must be non-empty");

  // Everything from the previous batch is dead; reclaim the whole arena.
  ws_->reset();

  // ---- Encoder ----
  encoder_.begin(B, nullptr, train, &rng_, ws_);
  enc_outputs_.clear();
  enc_outputs_.reserve(S);
  for (std::size_t t = 0; t < S; ++t) {
    tensor::MatrixView src_emb = ws_->alloc(B, config_.embedding_dim);
    src_embed_.forward_into(src_steps[t], src_emb);
    enc_outputs_.push_back(encoder_.step(src_emb));
  }
  const nn::LstmState enc_final = encoder_.state();

  // ---- Decoder (teacher forcing: input <s>, w1..wm; predict w1..wm, </s>) --
  decoder_.begin(B, &enc_final, train, &rng_, ws_);
  attention_.begin(enc_outputs_, B, ws_);

  std::vector<std::vector<std::int32_t>> dec_inputs(T);
  std::vector<std::vector<std::int32_t>> dec_targets(T);
  for (std::size_t t = 0; t < T; ++t) {
    dec_inputs[t] = (t == 0)
                        ? std::vector<std::int32_t>(B, text::Vocabulary::kBos)
                        : tgt_steps[t - 1];
    dec_targets[t] =
        (t + 1 == T) ? std::vector<std::int32_t>(B, text::Vocabulary::kEos)
                     : tgt_steps[t];
  }

  const std::size_t total_tokens = B * T;
  const float grad_scale = 1.0f / static_cast<float>(total_tokens);

  double loss_sum = 0.0;
  attn_states_.assign(T, tensor::ConstMatrixView());
  dlogits_.assign(T, tensor::MatrixView());
  for (std::size_t t = 0; t < T; ++t) {
    tensor::MatrixView tgt_emb = ws_->alloc(B, config_.embedding_dim);
    tgt_embed_.forward_into(dec_inputs[t], tgt_emb);
    const tensor::ConstMatrixView h_dec = decoder_.step(tgt_emb);
    attn_states_[t] = attention_.step(h_dec);
    dlogits_[t] = ws_->alloc(B, tgt_vocab());
    // The logits themselves are transient: only their xent gradient is kept.
    const tensor::Workspace::Checkpoint scratch = ws_->checkpoint();
    tensor::MatrixView logits = ws_->alloc(B, tgt_vocab());
    out_.forward_into(attn_states_[t], logits);
    const nn::XentResult res =
        nn::softmax_xent(tensor::ConstMatrixView(logits), dec_targets[t],
                         dlogits_[t], grad_scale);
    ws_->rewind(scratch);
    loss_sum += res.loss_sum;
  }
  const double mean_loss = loss_sum / static_cast<double>(total_tokens);
  if (!train) return mean_loss;

  // ---- Backward ----
  dh_dec_.assign(T, tensor::ConstMatrixView());
  for (std::size_t t = T; t-- > 0;) {
    tensor::MatrixView d_attn = ws_->alloc(B, config_.hidden_dim);
    out_.backward_into(attn_states_[t], dlogits_[t], d_attn);
    dh_dec_[t] = attention_.backward_step(d_attn);
  }
  nn::LstmStack::BackwardResult dec_back = decoder_.backward(dh_dec_);
  for (std::size_t t = 0; t < T; ++t) {
    tgt_embed_.backward(dec_inputs[t], dec_back.dx[t]);
  }

  // Encoder receives gradient from attention (per step) and from the
  // decoder's initial state.
  nn::LstmStack::BackwardResult enc_back =
      encoder_.backward(attention_.encoder_grads(), &dec_back.dstate0);
  for (std::size_t t = 0; t < S; ++t) {
    src_embed_.backward(src_steps[t], enc_back.dx[t]);
  }
  return mean_loss;
}

double Seq2SeqModel::train_batch(
    const std::vector<const EncodedPair*>& batch) {
  DESMINE_EXPECTS(trainable(),
                  "cannot train a model serving mapped (read-only) weights");
  return run_teacher_forced(batch, /*train=*/true);
}

double Seq2SeqModel::evaluate_loss(
    const std::vector<const EncodedPair*>& batch) {
  return run_teacher_forced(batch, /*train=*/false);
}

void Seq2SeqModel::encode_single(const std::vector<std::int32_t>& source,
                                 tensor::Precision precision) {
  encoder_.begin(1, nullptr, /*train=*/false, nullptr, ws_, precision);
  enc_outputs_.clear();
  enc_outputs_.reserve(source.size());
  for (std::int32_t id : source) {
    tensor::MatrixView src_emb = ws_->alloc(1, config_.embedding_dim);
    src_embed_.forward_into({id}, src_emb);
    enc_outputs_.push_back(encoder_.step(src_emb));
  }
}

std::vector<std::int32_t> Seq2SeqModel::translate(
    const std::vector<std::int32_t>& source) {
  DESMINE_EXPECTS(!source.empty(), "cannot translate an empty sentence");

  ws_->reset();
  encode_single(source, decode_precision_);
  const nn::LstmState enc_final = encoder_.state();

  decoder_.begin(1, &enc_final, /*train=*/false, nullptr, ws_,
                 decode_precision_);
  attention_.begin(enc_outputs_, 1, ws_, nullptr, decode_precision_);

  std::vector<std::int32_t> output;
  std::int32_t prev = text::Vocabulary::kBos;
  bool saw_eos = false;
  for (std::size_t t = 0; t < config_.max_decode_length; ++t) {
    tensor::MatrixView tgt_emb = ws_->alloc(1, config_.embedding_dim);
    tgt_embed_.forward_into({prev}, tgt_emb);
    const tensor::ConstMatrixView h_dec = decoder_.step(tgt_emb);
    const tensor::ConstMatrixView attn = attention_.step(h_dec);
    const tensor::Workspace::Checkpoint scratch = ws_->checkpoint();
    tensor::MatrixView logits = ws_->alloc(1, tgt_vocab());
    out_.forward_into(attn, logits, decode_precision_);
    const std::int32_t next =
        nn::argmax_rows(tensor::ConstMatrixView(logits))[0];
    ws_->rewind(scratch);
    if (next == text::Vocabulary::kEos) {
      saw_eos = true;
      break;
    }
    output.push_back(next);
    prev = next;
  }
  // A truncated decode usually means max_decode_length is too small for the
  // configured sentence length; scores computed from it are suspect.
  if (!saw_eos) {
    DESMINE_LOG_DEBUG("greedy decode truncated before </s>",
                      {obs::kv("max_decode_length", config_.max_decode_length),
                       obs::kv("source_length", source.size())});
  }
  return output;
}

std::vector<std::vector<std::int32_t>> Seq2SeqModel::translate_batch(
    const std::vector<const std::vector<std::int32_t>*>& sources) {
  DESMINE_EXPECTS(!sources.empty(), "cannot translate an empty batch");
  const std::size_t B = sources.size();
  std::vector<std::size_t> lengths(B);
  std::size_t max_len = 0;
  for (std::size_t b = 0; b < B; ++b) {
    DESMINE_EXPECTS(sources[b] != nullptr && !sources[b]->empty(),
                    "cannot translate an empty sentence");
    lengths[b] = sources[b]->size();
    max_len = std::max(max_len, lengths[b]);
  }

  ws_->reset();

  // Lock-step ragged encode: rows run to the longest source; a row past its
  // own length steps on <pad> and is immediately rolled back, so its final
  // state is exactly the state at its true length.
  encoder_.begin(B, nullptr, /*train=*/false, nullptr, ws_,
                 decode_precision_);
  enc_outputs_.clear();
  enc_outputs_.reserve(max_len);
  std::vector<std::int32_t> step_ids(B);
  std::vector<std::uint8_t> frozen(B);
  for (std::size_t t = 0; t < max_len; ++t) {
    bool any_frozen = false;
    for (std::size_t b = 0; b < B; ++b) {
      if (t < lengths[b]) {
        step_ids[b] = (*sources[b])[t];
        frozen[b] = 0;
      } else {
        step_ids[b] = text::Vocabulary::kPad;
        frozen[b] = 1;
        any_frozen = true;
      }
    }
    tensor::MatrixView src_emb = ws_->alloc(B, config_.embedding_dim);
    src_embed_.forward_into(step_ids, src_emb);
    enc_outputs_.push_back(encoder_.step(src_emb));
    if (any_frozen) encoder_.retain_rows(frozen);
  }
  const nn::LstmState enc_final = encoder_.state();

  decoder_.begin(B, &enc_final, /*train=*/false, nullptr, ws_,
                 decode_precision_);
  attention_.begin(enc_outputs_, B, ws_, &lengths, decode_precision_);

  // Lock-step greedy decode. A finished row keeps stepping (its state no
  // longer feeds anything that is kept), which cannot perturb other rows:
  // every kernel is row-independent.
  std::vector<std::vector<std::int32_t>> outputs(B);
  std::vector<std::int32_t> prev(B, text::Vocabulary::kBos);
  std::vector<std::uint8_t> done(B, 0);
  std::size_t done_count = 0;
  for (std::size_t t = 0;
       t < config_.max_decode_length && done_count < B; ++t) {
    tensor::MatrixView tgt_emb = ws_->alloc(B, config_.embedding_dim);
    tgt_embed_.forward_into(prev, tgt_emb);
    const tensor::ConstMatrixView h_dec = decoder_.step(tgt_emb);
    const tensor::ConstMatrixView attn = attention_.step(h_dec);
    const tensor::Workspace::Checkpoint scratch = ws_->checkpoint();
    tensor::MatrixView logits = ws_->alloc(B, tgt_vocab());
    out_.forward_into(attn, logits, decode_precision_);
    const std::vector<std::int32_t> next =
        nn::argmax_rows(tensor::ConstMatrixView(logits));
    ws_->rewind(scratch);
    for (std::size_t b = 0; b < B; ++b) {
      if (done[b]) continue;
      if (next[b] == text::Vocabulary::kEos) {
        done[b] = 1;
        ++done_count;
      } else {
        outputs[b].push_back(next[b]);
        prev[b] = next[b];
      }
    }
  }
  if (done_count < B) {
    DESMINE_LOG_DEBUG("batched greedy decode truncated before </s>",
                      {obs::kv("max_decode_length", config_.max_decode_length),
                       obs::kv("unfinished_rows", B - done_count)});
  }
  return outputs;
}

std::vector<std::int32_t> Seq2SeqModel::translate_beam(
    const std::vector<std::int32_t>& source, std::size_t beam_width) {
  DESMINE_EXPECTS(!source.empty(), "cannot translate an empty sentence");
  DESMINE_EXPECTS(beam_width >= 1, "beam width must be >= 1");

  // Beam search always runs f32: its log-prob arithmetic is calibrated on
  // full-precision logits.
  ws_->reset();
  encode_single(source, tensor::Precision::kF32);
  attention_.begin(enc_outputs_, 1, ws_);

  struct Hypothesis {
    nn::LstmState state;
    std::vector<std::int32_t> tokens;  ///< emitted ids (no specials)
    double log_prob = 0.0;
    bool done = false;
    std::int32_t last = text::Vocabulary::kBos;

    double normalized() const {
      return log_prob / static_cast<double>(tokens.size() + 1);
    }
  };

  std::vector<Hypothesis> beam(1);
  beam[0].state = encoder_.state();

  const std::size_t V = tgt_vocab();
  for (std::size_t t = 0; t < config_.max_decode_length; ++t) {
    bool all_done = true;
    std::vector<Hypothesis> candidates;
    for (const Hypothesis& hyp : beam) {
      if (hyp.done) {
        candidates.push_back(hyp);
        continue;
      }
      all_done = false;
      Hypothesis advanced = hyp;
      const tensor::Matrix h_dec = decoder_.infer_step(
          tgt_embed_.forward({hyp.last}), advanced.state);
      const tensor::Matrix attn = attention_.infer(h_dec);
      tensor::Matrix logits = out_.forward(attn);

      // Log-softmax over the single row.
      float mx = logits(0, 0);
      for (std::size_t v = 1; v < V; ++v) mx = std::max(mx, logits(0, v));
      double denom = 0.0;
      for (std::size_t v = 0; v < V; ++v) {
        denom += std::exp(static_cast<double>(logits(0, v)) - mx);
      }
      const double log_denom = std::log(denom) + mx;

      // Expand the top beam_width continuations of this hypothesis.
      std::vector<std::pair<double, std::int32_t>> scored;
      scored.reserve(V);
      for (std::size_t v = 0; v < V; ++v) {
        const auto id = static_cast<std::int32_t>(v);
        if (id == text::Vocabulary::kPad || id == text::Vocabulary::kBos) {
          continue;
        }
        scored.emplace_back(static_cast<double>(logits(0, v)) - log_denom, id);
      }
      const std::size_t expand = std::min(beam_width, scored.size());
      std::partial_sort(scored.begin(),
                        scored.begin() + static_cast<long>(expand),
                        scored.end(), std::greater<>());
      for (std::size_t e = 0; e < expand; ++e) {
        Hypothesis next = advanced;
        next.log_prob += scored[e].first;
        if (scored[e].second == text::Vocabulary::kEos) {
          next.done = true;
        } else {
          next.tokens.push_back(scored[e].second);
          next.last = scored[e].second;
        }
        candidates.push_back(std::move(next));
      }
    }
    if (all_done) break;

    std::sort(candidates.begin(), candidates.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.normalized() > b.normalized();
              });
    if (candidates.size() > beam_width) candidates.resize(beam_width);
    beam = std::move(candidates);
  }

  const auto best = std::max_element(
      beam.begin(), beam.end(), [](const Hypothesis& a, const Hypothesis& b) {
        return a.normalized() < b.normalized();
      });
  return best->tokens;
}

}  // namespace desmine::nmt
