// High-level translation artifact: vocabularies + trained Seq2SeqModel.
//
// This is the directional pairwise model g(i, j) of Algorithm 1. Training
// happens on aligned sentence corpora from the source and target sensors;
// scoring translates a corpus greedily and reports corpus BLEU against the
// reference — the paper's s(i, j) during training and f(i, j) during testing.
#pragma once

#include <memory>
#include <vector>

#include "nmt/seq2seq.h"
#include "nmt/trainer.h"
#include "text/bleu.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace desmine::nmt {

struct TranslationConfig {
  Seq2SeqConfig model{};
  TrainerConfig trainer{};
  text::BleuOptions bleu{};
};

class TranslationModel {
 public:
  TranslationModel(text::Vocabulary src_vocab, text::Vocabulary tgt_vocab,
                   std::unique_ptr<Seq2SeqModel> model);

  /// Translate one sentence (token strings in, token strings out). Unknown
  /// source tokens map to <unk>, matching the paper's reserved symbol.
  text::Sentence translate(const text::Sentence& source);

  /// Corpus BLEU (0..100) of greedy translations of `source` against
  /// `reference`. Corpora must be aligned sentence-by-sentence.
  text::BleuBreakdown score(const text::Corpus& source,
                            const text::Corpus& reference,
                            const text::BleuOptions& options = {});

  /// Translate a batch of sentences in one stacked greedy decode
  /// (Seq2SeqModel::translate_batch), bit-identical per sentence to
  /// translate(). Duplicate sources — the common case for periodic discrete
  /// event streams — are decoded once and fanned back out.
  std::vector<text::Sentence> translate_batch(
      const std::vector<const text::Sentence*>& sources);

  /// Batched per-sentence scoring (the serve hot path): sentence BLEU
  /// (0..100) of the batched greedy translation of each source against its
  /// aligned reference. Element i is bit-identical to
  /// sentence_bleu(translate(*sources[i]), *references[i], options).score.
  std::vector<double> score_batch(
      const std::vector<const text::Sentence*>& sources,
      const std::vector<const text::Sentence*>& references,
      const text::BleuOptions& options = {});

  const text::Vocabulary& src_vocab() const { return src_vocab_; }
  const text::Vocabulary& tgt_vocab() const { return tgt_vocab_; }
  Seq2SeqModel& model() { return *model_; }

  /// Numeric mode of greedy decodes (translate / translate_batch /
  /// score / score_batch); forwards to Seq2SeqModel::set_decode_precision.
  void set_decode_precision(tensor::Precision p) {
    model_->set_decode_precision(p);
  }
  tensor::Precision decode_precision() const {
    return model_->decode_precision();
  }

  /// Keep `pin` alive as long as this model: a mapped model's weights are
  /// views into an io::ArtifactMap's pages, so the map must outlive every
  /// reader (DESIGN.md §15). Idempotent per pin; owned models never call it.
  void pin_storage(std::shared_ptr<const void> pin) {
    storage_pin_ = std::move(pin);
  }

 private:
  text::Vocabulary src_vocab_;
  text::Vocabulary tgt_vocab_;
  std::unique_ptr<Seq2SeqModel> model_;
  std::shared_ptr<const void> storage_pin_;
};

/// Encode aligned string corpora into id pairs with the given vocabularies.
std::vector<EncodedPair> encode_pairs(const text::Vocabulary& src_vocab,
                                      const text::Vocabulary& tgt_vocab,
                                      const text::Corpus& source,
                                      const text::Corpus& target);

/// Algorithm 1, one edge: build vocabularies from the training corpora,
/// train a Seq2SeqModel on the aligned pairs, and return the artifact.
/// When `history` is non-null, the training history (per-step losses, steps
/// run) is copied out for telemetry. `workspace`, if given, backs the
/// model's hot path (e.g. the miner's per-thread arena, reused across
/// pairs); the model must remain its only concurrent user.
TranslationModel train_translation_model(const text::Corpus& train_source,
                                         const text::Corpus& train_target,
                                         const TranslationConfig& config,
                                         std::uint64_t seed,
                                         TrainingHistory* history = nullptr,
                                         tensor::Workspace* workspace = nullptr);

}  // namespace desmine::nmt
