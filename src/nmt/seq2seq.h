// Sequence-to-sequence LSTM encoder/decoder with Luong attention.
//
// This is the NMT model of the paper's §II-A3 ([23], [37]): a multi-layer
// LSTM encoder maps the source sensor-language sentence to hidden states, a
// decoder initialized from the encoder's final state emits the target
// sentence token by token, and Luong "general" attention over the encoder
// outputs feeds an attentional hidden state into the output projection.
// Training uses teacher forcing; inference uses greedy decoding.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/param.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace desmine::nmt {

struct Seq2SeqConfig {
  std::size_t embedding_dim = 64;  ///< paper: 64
  std::size_t hidden_dim = 64;     ///< paper: 64
  std::size_t num_layers = 2;      ///< paper: 2
  float dropout = 0.2f;            ///< paper: 0.2
  float init_scale = 0.1f;
  std::size_t max_decode_length = 64;  ///< decode cap (greedy and beam)
  nn::AttentionScore attention = nn::AttentionScore::kGeneral;
};

/// One encoded sentence pair: source ids and target ids (no specials; the
/// model adds <s>/</s> internally).
struct EncodedPair {
  std::vector<std::int32_t> source;
  std::vector<std::int32_t> target;
};

class Seq2SeqModel {
 public:
  /// All weights are drawn from `rng`, so a (seed, config) pair fully
  /// determines the initial model.
  Seq2SeqModel(std::size_t src_vocab, std::size_t tgt_vocab,
               const Seq2SeqConfig& config, util::Rng rng);

  /// Teacher-forced forward+backward over a batch. All sources must share
  /// one length and all targets another (the trainer buckets accordingly).
  /// Gradients accumulate into the registry; returns mean loss per token.
  double train_batch(const std::vector<const EncodedPair*>& batch);

  /// Mean per-token loss without gradient computation or dropout.
  double evaluate_loss(const std::vector<const EncodedPair*>& batch);

  /// Greedy-decode a single source sentence; returns target ids without
  /// specials.
  std::vector<std::int32_t> translate(
      const std::vector<std::int32_t>& source);

  /// Beam-search decode with the given width; returns the
  /// length-normalized-highest-log-probability hypothesis (ids without
  /// specials). beam_width == 1 degenerates to greedy.
  std::vector<std::int32_t> translate_beam(
      const std::vector<std::int32_t>& source, std::size_t beam_width);

  nn::ParamRegistry& params() { return registry_; }
  const Seq2SeqConfig& config() const { return config_; }
  std::size_t src_vocab() const { return src_embed_.vocab_size(); }
  std::size_t tgt_vocab() const { return out_.out_dim(); }

 private:
  /// Shared forward pass; when `train` is true caches are kept for backward
  /// and dropout is active.
  double run_teacher_forced(const std::vector<const EncodedPair*>& batch,
                            bool train);

  Seq2SeqConfig config_;
  util::Rng rng_;

  nn::Embedding src_embed_;
  nn::Embedding tgt_embed_;
  nn::LstmStack encoder_;
  nn::LstmStack decoder_;
  nn::LuongAttention attention_;
  nn::Linear out_;
  nn::ParamRegistry registry_;
};

}  // namespace desmine::nmt
