// Sequence-to-sequence LSTM encoder/decoder with Luong attention.
//
// This is the NMT model of the paper's §II-A3 ([23], [37]): a multi-layer
// LSTM encoder maps the source sensor-language sentence to hidden states, a
// decoder initialized from the encoder's final state emits the target
// sentence token by token, and Luong "general" attention over the encoder
// outputs feeds an attentional hidden state into the output projection.
// Training uses teacher forcing; inference uses greedy decoding.
//
// All activations, per-timestep caches, and backward scratch live in one
// tensor::Workspace per model (or a caller-provided one, e.g. the miner's
// per-thread arena), rewound wholesale at the start of every batch/decode.
// After the first step has grown the arena to its high-water mark, training
// and greedy decoding perform no steady-state heap allocation in the
// numeric path (see DESIGN.md §10).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/param.h"
#include "tensor/workspace.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace desmine::nmt {

struct Seq2SeqConfig {
  std::size_t embedding_dim = 64;  ///< paper: 64
  std::size_t hidden_dim = 64;     ///< paper: 64
  std::size_t num_layers = 2;      ///< paper: 2
  float dropout = 0.2f;            ///< paper: 0.2
  float init_scale = 0.1f;
  std::size_t max_decode_length = 64;  ///< decode cap (greedy and beam)
  nn::AttentionScore attention = nn::AttentionScore::kGeneral;
};

/// One encoded sentence pair: source ids and target ids (no specials; the
/// model adds <s>/</s> internally).
struct EncodedPair {
  std::vector<std::int32_t> source;
  std::vector<std::int32_t> target;
};

class Seq2SeqModel {
 public:
  /// All weights are drawn from `rng`, so a (seed, config) pair fully
  /// determines the initial model. `workspace`, if given, backs the model's
  /// hot path (the model rewinds it per batch/decode and must be its only
  /// concurrent user); otherwise the model owns a private arena.
  /// With `storage == kDeferred` no weight tensors are allocated or
  /// initialized: the caller binds every registry Param to external
  /// read-only storage (io::ArtifactMap) before the first forward pass, and
  /// the model is inference-only (train_batch throws).
  Seq2SeqModel(std::size_t src_vocab, std::size_t tgt_vocab,
               const Seq2SeqConfig& config, util::Rng rng,
               tensor::Workspace* workspace = nullptr,
               nn::WeightStorage storage = nn::WeightStorage::kOwned);

  /// Teacher-forced forward+backward over a batch. All sources must share
  /// one length and all targets another (the trainer buckets accordingly).
  /// Gradients accumulate into the registry; returns mean loss per token.
  double train_batch(const std::vector<const EncodedPair*>& batch);

  /// Mean per-token loss without gradient computation or dropout.
  double evaluate_loss(const std::vector<const EncodedPair*>& batch);

  /// Greedy-decode a single source sentence; returns target ids without
  /// specials.
  std::vector<std::int32_t> translate(
      const std::vector<std::int32_t>& source);

  /// Greedy-decode B ragged-length sources in one lock-step batched pass
  /// (the serve layer's score_batch kernel). Sources are padded to the
  /// longest; encoder rows past their own length are frozen via
  /// LstmStack::retain_rows and attention masks padded positions to -inf,
  /// so every kernel still sees each row's exact sequential inputs. Every
  /// kernel on this path (gemm, bias, softmax, LSTM gates, attention,
  /// argmax) computes each output row purely from that row's inputs, so the
  /// returned ids — and any score derived from them — are bit-identical to
  /// calling translate() per sentence (under either decode precision).
  std::vector<std::vector<std::int32_t>> translate_batch(
      const std::vector<const std::vector<std::int32_t>*>& sources);

  /// Beam-search decode with the given width; returns the
  /// length-normalized-highest-log-probability hypothesis (ids without
  /// specials). beam_width == 1 degenerates to greedy.
  std::vector<std::int32_t> translate_beam(
      const std::vector<std::int32_t>& source, std::size_t beam_width);

  /// Pre-size the workspace for the largest (source length, target length,
  /// batch) the caller will run, so the hot loop never grows the arena.
  /// A deliberate over-estimate; growing later is still correct.
  void reserve_workspace(std::size_t max_src_len, std::size_t max_tgt_len,
                         std::size_t batch);

  /// The workspace backing this model's hot path (for stats/bench).
  const tensor::Workspace& workspace() const { return *ws_; }

  /// Detach from a caller-provided workspace and fall back to the model's
  /// own arena. Must be called before the external workspace dies while the
  /// model lives on — e.g. the miner trains against a pool-thread arena,
  /// then detaches the finished model before publishing it to the graph.
  void use_own_workspace() { ws_ = &own_ws_; }

  /// Numeric mode of greedy decodes (translate / translate_batch and their
  /// encoder passes): kF32 (default) or the int8 quantized-weight path
  /// (DESIGN.md §16). Training, evaluate_loss, and beam search always run
  /// f32 — int8 has no backward, and beam scores feed log-prob arithmetic
  /// tuned on f32. Set at load/config time, not mid-decode.
  void set_decode_precision(tensor::Precision p) { decode_precision_ = p; }
  tensor::Precision decode_precision() const { return decode_precision_; }

  nn::ParamRegistry& params() { return registry_; }
  const Seq2SeqConfig& config() const { return config_; }
  /// False when the weights are bound views over external (mapped) storage;
  /// such a model can decode and evaluate but never train.
  bool trainable() const { return storage_ == nn::WeightStorage::kOwned; }
  std::size_t src_vocab() const { return src_embed_.vocab_size(); }
  std::size_t tgt_vocab() const { return out_.out_dim(); }

 private:
  /// Shared forward pass; when `train` is true caches are kept for backward
  /// and dropout is active.
  double run_teacher_forced(const std::vector<const EncodedPair*>& batch,
                            bool train);

  /// Encoder pass over `source` (batch 1) into the workspace; fills
  /// enc_outputs_ and leaves the encoder holding its final state.
  void encode_single(const std::vector<std::int32_t>& source,
                     tensor::Precision precision);

  Seq2SeqConfig config_;
  util::Rng rng_;
  nn::WeightStorage storage_ = nn::WeightStorage::kOwned;
  tensor::Precision decode_precision_ = tensor::Precision::kF32;

  nn::Embedding src_embed_;
  nn::Embedding tgt_embed_;
  nn::LstmStack encoder_;
  nn::LstmStack decoder_;
  nn::LuongAttention attention_;
  nn::Linear out_;
  nn::ParamRegistry registry_;

  tensor::Workspace* ws_ = nullptr;
  tensor::Workspace own_ws_;
  // Per-batch scratch lists (capacity reused across batches; the views they
  // hold die at the next workspace rewind).
  std::vector<tensor::ConstMatrixView> enc_outputs_;
  std::vector<tensor::ConstMatrixView> attn_states_;
  std::vector<tensor::MatrixView> dlogits_;
  std::vector<tensor::ConstMatrixView> dh_dec_;
};

}  // namespace desmine::nmt
