// Training loop for Seq2SeqModel: bucketed mini-batches, Adam, grad
// clipping, and a divergence guard that fails fast (TrainDivergence) when a
// run goes numerically bad instead of burning the remaining step budget.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "nmt/seq2seq.h"
#include "util/error.h"
#include "util/rng.h"

namespace desmine::nmt {

/// Per-step training progress, delivered through TrainerConfig::on_step.
struct StepEvent {
  std::size_t step = 0;  ///< 1-based
  double loss = 0.0;     ///< mean per-token loss of this step's batch
  float lr = 0.0f;       ///< learning rate after the schedule applied
  /// Mean dev loss when this step ran an evaluation, NaN otherwise.
  double dev_loss = std::numeric_limits<double>::quiet_NaN();
};

struct TrainerConfig {
  std::size_t steps = 1000;   ///< paper: 1000 training steps
  std::size_t batch_size = 16;
  float lr = 1e-2f;
  float clip_norm = 5.0f;
  nn::AdamConfig adam{};  ///< lr below overrides adam.lr

  /// Halve the learning rate every `lr_decay_every` steps once
  /// `lr_decay_start` steps have passed (Luong-style schedule). 0 disables.
  std::size_t lr_decay_start = 0;
  std::size_t lr_decay_every = 0;

  /// Early stopping (train_with_dev only): evaluate dev loss every
  /// `eval_every` steps; stop after `patience` evaluations without
  /// improvement. eval_every == 0 disables evaluation.
  std::size_t eval_every = 0;
  std::size_t patience = 3;

  /// Divergence guard: after every step the trainer fails with
  /// TrainDivergence when the batch loss (or a dev evaluation) is NaN/Inf,
  /// or when it exceeds divergence_factor times the first step's loss
  /// (floored at 1e-3 so near-zero initial losses don't trip on noise).
  /// 0 disables the guard.
  double divergence_factor = 1e4;

  /// Progress hook called after every training step (miner wires this into
  /// per-pair telemetry). Beware: runs on the training thread; keep it cheap.
  std::function<void(const StepEvent&)> on_step;
};

struct TrainingHistory {
  std::vector<double> losses;  ///< mean per-token loss per step
  double final_loss = 0.0;
  /// (step, dev loss) pairs from train_with_dev.
  std::vector<std::pair<std::size_t, double>> dev_losses;
  double best_dev_loss = 0.0;
  std::size_t steps_run = 0;  ///< < config.steps when early-stopped
  /// 1-based step at which the divergence guard tripped; 0 = never.
  std::size_t diverged_at_step = 0;
};

/// Training diverged (non-finite or exploding loss). Carries the history up
/// to the offending step so callers can log where it tripped; the miner
/// treats this as retryable with a forked seed and a halved learning rate.
class TrainDivergence : public RuntimeError {
 public:
  TrainDivergence(const std::string& message, TrainingHistory history)
      : RuntimeError(message), history_(std::move(history)) {}

  /// 1-based step at which the guard tripped.
  std::size_t step() const { return history_.diverged_at_step; }
  const TrainingHistory& history() const { return history_; }

 private:
  TrainingHistory history_;
};

/// Run the teacher-forced training loop. Pairs with differing lengths are
/// bucketed by (source length, target length); each step samples one bucket
/// (weighted by size) and draws a batch from it with replacement.
TrainingHistory train(Seq2SeqModel& model,
                      const std::vector<EncodedPair>& pairs,
                      const TrainerConfig& config, util::Rng rng);

/// Like train(), but also evaluates mean dev loss every `config.eval_every`
/// steps and early-stops after `config.patience` evaluations without
/// improvement. `dev_pairs` must be non-empty when eval_every > 0.
TrainingHistory train_with_dev(Seq2SeqModel& model,
                               const std::vector<EncodedPair>& pairs,
                               const std::vector<EncodedPair>& dev_pairs,
                               const TrainerConfig& config, util::Rng rng);

}  // namespace desmine::nmt
