#include "nmt/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::nmt {

namespace {

/// Buckets pairs by (src_len, tgt_len) so every batch is rectangular.
struct Buckets {
  std::vector<std::vector<const EncodedPair*>> groups;
  std::vector<double> weights;
};

Buckets bucket_pairs(const std::vector<EncodedPair>& pairs) {
  std::map<std::pair<std::size_t, std::size_t>, std::vector<const EncodedPair*>>
      bucket_map;
  for (const EncodedPair& p : pairs) {
    DESMINE_EXPECTS(!p.source.empty() && !p.target.empty(),
                    "empty sentence in training corpus");
    bucket_map[{p.source.size(), p.target.size()}].push_back(&p);
  }
  Buckets out;
  for (auto& [shape, bucket] : bucket_map) {
    out.weights.push_back(static_cast<double>(bucket.size()));
    out.groups.push_back(std::move(bucket));
  }
  return out;
}

/// Mean dev loss over length-bucketed batches.
double dev_loss(Seq2SeqModel& model, const Buckets& dev,
                std::size_t batch_size) {
  double loss_sum = 0.0;
  std::size_t sentence_count = 0;
  for (const auto& bucket : dev.groups) {
    for (std::size_t start = 0; start < bucket.size(); start += batch_size) {
      const std::size_t end = std::min(start + batch_size, bucket.size());
      const std::vector<const EncodedPair*> batch(
          bucket.begin() + static_cast<long>(start),
          bucket.begin() + static_cast<long>(end));
      loss_sum += model.evaluate_loss(batch) *
                  static_cast<double>(batch.size());
      sentence_count += batch.size();
    }
  }
  return loss_sum / static_cast<double>(sentence_count);
}

TrainingHistory run_training(Seq2SeqModel& model,
                             const std::vector<EncodedPair>& pairs,
                             const std::vector<EncodedPair>* dev_pairs,
                             const TrainerConfig& config, util::Rng rng) {
  DESMINE_EXPECTS(!pairs.empty(), "cannot train on an empty corpus");
  DESMINE_EXPECTS(config.batch_size > 0 && config.steps > 0,
                  "trainer config must be positive");
  const bool evaluating = dev_pairs != nullptr && config.eval_every > 0;
  if (evaluating) {
    DESMINE_EXPECTS(!dev_pairs->empty(),
                    "early stopping needs a dev corpus");
  }

  const Buckets buckets = bucket_pairs(pairs);
  Buckets dev;
  if (evaluating) dev = bucket_pairs(*dev_pairs);

  // Pre-size the model's workspace for the largest bucket so the training
  // loop never grows the arena mid-flight.
  {
    std::size_t max_src = 0, max_tgt = 0;
    for (const EncodedPair& p : pairs) {
      max_src = std::max(max_src, p.source.size());
      max_tgt = std::max(max_tgt, p.target.size());
    }
    if (evaluating) {
      for (const EncodedPair& p : *dev_pairs) {
        max_src = std::max(max_src, p.source.size());
        max_tgt = std::max(max_tgt, p.target.size());
      }
    }
    model.reserve_workspace(max_src, max_tgt, config.batch_size);
  }

  nn::AdamConfig adam_config = config.adam;
  adam_config.lr = config.lr;
  nn::Adam optimizer(model.params(), adam_config);

  TrainingHistory history;
  history.best_dev_loss = std::numeric_limits<double>::infinity();
  history.losses.reserve(config.steps);
  std::size_t evals_without_improvement = 0;

  static obs::Counter& steps_total =
      obs::metrics().counter("nmt.train.steps");
  static obs::Counter& divergences =
      obs::metrics().counter("nmt.train.divergences");

  // Divergence baseline: the first finite step loss (floored so a lucky
  // near-zero start does not make the explosion threshold hair-trigger).
  double baseline = std::numeric_limits<double>::quiet_NaN();
  const auto fail_divergence = [&](std::size_t step_1based, double bad,
                                   const char* what) {
    divergences.inc();
    history.diverged_at_step = step_1based;
    history.steps_run = step_1based;
    throw TrainDivergence(
        std::string("training diverged at step ") +
            std::to_string(step_1based) + ": " + what + " = " +
            std::to_string(bad) +
            (std::isfinite(baseline)
                 ? " (baseline " + std::to_string(baseline) + ")"
                 : std::string()),
        std::move(history));
  };

  for (std::size_t step = 0; step < config.steps; ++step) {
    // Learning-rate schedule: halve every lr_decay_every past the start.
    if (config.lr_decay_every > 0 && step >= config.lr_decay_start &&
        step > 0 && (step - config.lr_decay_start) % config.lr_decay_every == 0) {
      optimizer.set_lr(optimizer.config().lr * 0.5f);
    }

    const std::size_t bi =
        buckets.groups.size() == 1 ? 0 : rng.categorical(buckets.weights);
    const auto& bucket = buckets.groups[bi];
    std::vector<const EncodedPair*> batch;
    batch.reserve(config.batch_size);
    for (std::size_t k = 0; k < config.batch_size; ++k) {
      batch.push_back(bucket[rng.index(bucket.size())]);
    }

    model.params().zero_grad();
    const double loss = model.train_batch(batch);
    model.params().clip_grad_norm(config.clip_norm);
    optimizer.step();
    history.losses.push_back(loss);
    history.steps_run = step + 1;
    steps_total.inc();

    if (config.divergence_factor > 0.0) {
      if (!std::isfinite(loss)) {
        fail_divergence(step + 1, loss, "loss");
      }
      if (std::isnan(baseline)) {
        baseline = std::max(loss, 1e-3);
      } else if (loss > config.divergence_factor * baseline) {
        fail_divergence(step + 1, loss, "loss");
      }
    }

    StepEvent event;
    event.step = step + 1;
    event.loss = loss;
    event.lr = optimizer.config().lr;

    bool stop = false;
    if (evaluating && (step + 1) % config.eval_every == 0) {
      const double dl = dev_loss(model, dev, config.batch_size);
      if (config.divergence_factor > 0.0 && !std::isfinite(dl)) {
        fail_divergence(step + 1, dl, "dev loss");
      }
      history.dev_losses.emplace_back(step + 1, dl);
      event.dev_loss = dl;
      if (dl < history.best_dev_loss - 1e-6) {
        history.best_dev_loss = dl;
        evals_without_improvement = 0;
      } else if (++evals_without_improvement >= config.patience) {
        stop = true;  // early stop
      }
    }
    if (config.on_step) config.on_step(event);
    if (stop) break;
  }
  history.final_loss = history.losses.back();
  if (!evaluating) history.best_dev_loss = 0.0;
  return history;
}

}  // namespace

TrainingHistory train(Seq2SeqModel& model,
                      const std::vector<EncodedPair>& pairs,
                      const TrainerConfig& config, util::Rng rng) {
  return run_training(model, pairs, nullptr, config, rng);
}

TrainingHistory train_with_dev(Seq2SeqModel& model,
                               const std::vector<EncodedPair>& pairs,
                               const std::vector<EncodedPair>& dev_pairs,
                               const TrainerConfig& config, util::Rng rng) {
  return run_training(model, pairs, &dev_pairs, config, rng);
}

}  // namespace desmine::nmt
