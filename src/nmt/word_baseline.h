// Count-based word-translation baseline.
//
// A deliberately simple alternative to the NMT pair model: for every
// sentence position k it learns the conditional distribution
// p(target word | source word at position k) from the aligned training
// corpus and translates by per-position argmax (falling back to the
// position's marginal mode for unseen source words). It captures
// instantaneous word-for-word coupling but no sequence context — the
// ablation bench uses it to quantify what the seq2seq model adds.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "text/bleu.h"
#include "text/vocabulary.h"

namespace desmine::nmt {

class WordBaseline {
 public:
  /// Fit from aligned corpora (equal sizes; sentences may vary in length —
  /// positions beyond a sentence's end simply contribute nothing).
  static WordBaseline fit(const text::Corpus& train_source,
                          const text::Corpus& train_target);

  /// Translate by per-position argmax; output length = source length
  /// clamped to the longest trained position.
  text::Sentence translate(const text::Sentence& source) const;

  /// Corpus BLEU of translations against references (the baseline's s(i,j)).
  text::BleuBreakdown score(const text::Corpus& source,
                            const text::Corpus& reference,
                            const text::BleuOptions& options = {}) const;

  /// Longest sentence position seen during training.
  std::size_t max_position() const { return per_position_.size(); }

 private:
  struct PositionModel {
    /// source word -> (target word -> count)
    std::map<std::string, std::map<std::string, std::size_t>> conditional;
    /// marginal target counts (fallback for unseen source words)
    std::map<std::string, std::size_t> marginal;
  };

  static const std::string* argmax(
      const std::map<std::string, std::size_t>& counts);

  std::vector<PositionModel> per_position_;
};

}  // namespace desmine::nmt
