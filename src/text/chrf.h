// chrF — character n-gram F-score (Popović, WMT 2015).
//
// An alternative translation-quality metric to BLEU. For sensor languages it
// is interesting because words are themselves character windows: chrF sees
// partial word matches (one flipped state inside a 10-char word) that BLEU's
// exact word n-grams score as complete misses, making it a gentler
// relationship metric. Offered alongside BLEU for experimentation; the
// paper's pipeline uses BLEU.
#pragma once

#include <cstddef>
#include <vector>

#include "text/vocabulary.h"

namespace desmine::text {

struct ChrfOptions {
  std::size_t max_order = 6;  ///< character n-gram orders 1..max_order
  double beta = 2.0;          ///< recall weight (chrF2 default)
};

struct ChrfBreakdown {
  double score = 0.0;  ///< 0..100
  double precision = 0.0;  ///< mean char n-gram precision, 0..1
  double recall = 0.0;     ///< mean char n-gram recall, 0..1
};

/// Corpus-level chrF between aligned candidate/reference sentence lists.
/// Sentences are flattened to character streams with a separator between
/// words. Empty corpora score 0.
ChrfBreakdown corpus_chrf(const Corpus& candidates, const Corpus& references,
                          const ChrfOptions& options = {});

/// Sentence-level chrF (a corpus of one).
ChrfBreakdown sentence_chrf(const Sentence& candidate,
                            const Sentence& reference,
                            const ChrfOptions& options = {});

}  // namespace desmine::text
