#include "text/chrf.h"

#include <algorithm>
#include <map>
#include <string>

#include "util/error.h"

namespace desmine::text {

namespace {

std::string flatten(const Sentence& sentence) {
  // Standard chrF ignores whitespace: words concatenate directly.
  std::string out;
  for (const std::string& word : sentence) out += word;
  return out;
}

std::map<std::string, std::size_t> char_ngrams(const std::string& chars,
                                               std::size_t order) {
  std::map<std::string, std::size_t> counts;
  if (chars.size() < order) return counts;
  for (std::size_t i = 0; i + order <= chars.size(); ++i) {
    ++counts[chars.substr(i, order)];
  }
  return counts;
}

}  // namespace

ChrfBreakdown corpus_chrf(const Corpus& candidates, const Corpus& references,
                          const ChrfOptions& options) {
  DESMINE_EXPECTS(candidates.size() == references.size(),
                  "candidate/reference corpora must align");
  DESMINE_EXPECTS(options.max_order >= 1, "max_order >= 1");
  DESMINE_EXPECTS(options.beta > 0.0, "beta must be positive");

  ChrfBreakdown out;
  if (candidates.empty()) return out;

  double precision_sum = 0.0, recall_sum = 0.0;
  std::size_t orders_counted = 0;
  for (std::size_t order = 1; order <= options.max_order; ++order) {
    std::size_t matched = 0, cand_total = 0, ref_total = 0;
    for (std::size_t s = 0; s < candidates.size(); ++s) {
      const auto cand = char_ngrams(flatten(candidates[s]), order);
      const auto ref = char_ngrams(flatten(references[s]), order);
      for (const auto& [gram, count] : cand) {
        cand_total += count;
        const auto it = ref.find(gram);
        if (it != ref.end()) matched += std::min(count, it->second);
      }
      for (const auto& [gram, count] : ref) ref_total += count;
    }
    if (cand_total == 0 && ref_total == 0) continue;  // order too long
    ++orders_counted;
    precision_sum += cand_total == 0 ? 0.0
                                     : static_cast<double>(matched) /
                                           static_cast<double>(cand_total);
    recall_sum += ref_total == 0 ? 0.0
                                 : static_cast<double>(matched) /
                                       static_cast<double>(ref_total);
  }
  if (orders_counted == 0) return out;

  out.precision = precision_sum / static_cast<double>(orders_counted);
  out.recall = recall_sum / static_cast<double>(orders_counted);
  const double b2 = options.beta * options.beta;
  const double denom = b2 * out.precision + out.recall;
  out.score = denom == 0.0
                  ? 0.0
                  : 100.0 * (1.0 + b2) * out.precision * out.recall / denom;
  return out;
}

ChrfBreakdown sentence_chrf(const Sentence& candidate,
                            const Sentence& reference,
                            const ChrfOptions& options) {
  return corpus_chrf({candidate}, {reference}, options);
}

}  // namespace desmine::text
