// Token vocabulary with the special symbols the seq2seq model needs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace desmine::text {

/// A sentence is an ordered list of word tokens.
using Sentence = std::vector<std::string>;
using Corpus = std::vector<Sentence>;

/// Bidirectional token<->id map. Ids 0..3 are reserved:
///   <pad>=0 (padding), <unk>=1 (unseen state, §II-A1 of the paper),
///   <s>=2 (decoder start), </s>=3 (decoder stop).
class Vocabulary {
 public:
  static constexpr std::int32_t kPad = 0;
  static constexpr std::int32_t kUnk = 1;
  static constexpr std::int32_t kBos = 2;
  static constexpr std::int32_t kEos = 3;

  Vocabulary();

  /// Build from a corpus: every distinct word becomes an id (insertion order
  /// after the specials, so construction is deterministic).
  static Vocabulary build(const Corpus& corpus);

  /// Id for a token; kUnk when the token is unknown.
  std::int32_t id(const std::string& token) const;

  /// Token for an id; throws on out-of-range ids.
  const std::string& token(std::int32_t id) const;

  bool contains(const std::string& token) const;

  /// Total entries including the four specials.
  std::size_t size() const { return tokens_.size(); }

  /// Encode a sentence to ids (unknowns -> kUnk).
  std::vector<std::int32_t> encode(const Sentence& sentence) const;

  /// Decode ids to tokens, skipping pad/bos/eos.
  Sentence decode(const std::vector<std::int32_t>& ids) const;

 private:
  void add(const std::string& token);

  std::unordered_map<std::string, std::int32_t> index_;
  std::vector<std::string> tokens_;
};

}  // namespace desmine::text
