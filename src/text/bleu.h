// BLEU — BiLingual Evaluation Understudy (Papineni et al., ACL 2002).
//
// The paper uses corpus BLEU on a 0–100 scale as the pairwise relationship
// metric s(i,j) between sensor languages (§II-A3). This implementation is
// the standard formulation: geometric mean of modified n-gram precisions up
// to max_order, times a brevity penalty, with optional +1 smoothing
// (Lin & Och) so short sensor sentences with a missing n-gram order do not
// collapse the score to zero.
#pragma once

#include <cstddef>
#include <vector>

#include "text/vocabulary.h"

namespace desmine::text {

struct BleuOptions {
  std::size_t max_order = 4;
  bool smooth = true;  ///< add-one smoothing on zero precision counts
};

struct BleuBreakdown {
  double score = 0.0;  ///< 0..100
  double brevity_penalty = 1.0;
  std::vector<double> precisions;  ///< per n-gram order, 0..1
  std::size_t candidate_length = 0;
  std::size_t reference_length = 0;
};

/// Corpus-level BLEU between aligned candidate/reference sentence lists.
/// Requires equal list sizes; empty corpora score 0.
BleuBreakdown corpus_bleu(const Corpus& candidates, const Corpus& references,
                          const BleuOptions& options = {});

/// Sentence-level BLEU (a corpus of one).
BleuBreakdown sentence_bleu(const Sentence& candidate,
                            const Sentence& reference,
                            const BleuOptions& options = {});

}  // namespace desmine::text
