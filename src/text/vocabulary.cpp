#include "text/vocabulary.h"

#include "util/error.h"

namespace desmine::text {

Vocabulary::Vocabulary() {
  add("<pad>");
  add("<unk>");
  add("<s>");
  add("</s>");
}

Vocabulary Vocabulary::build(const Corpus& corpus) {
  Vocabulary v;
  for (const Sentence& sentence : corpus) {
    for (const std::string& word : sentence) {
      if (!v.contains(word)) v.add(word);
    }
  }
  return v;
}

void Vocabulary::add(const std::string& token) {
  index_.emplace(token, static_cast<std::int32_t>(tokens_.size()));
  tokens_.push_back(token);
}

std::int32_t Vocabulary::id(const std::string& token) const {
  const auto it = index_.find(token);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocabulary::token(std::int32_t id) const {
  DESMINE_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < tokens_.size(),
                  "token id out of range");
  return tokens_[static_cast<std::size_t>(id)];
}

bool Vocabulary::contains(const std::string& token) const {
  return index_.count(token) > 0;
}

std::vector<std::int32_t> Vocabulary::encode(const Sentence& sentence) const {
  std::vector<std::int32_t> out;
  out.reserve(sentence.size());
  for (const std::string& word : sentence) out.push_back(id(word));
  return out;
}

Sentence Vocabulary::decode(const std::vector<std::int32_t>& ids) const {
  Sentence out;
  out.reserve(ids.size());
  for (std::int32_t id : ids) {
    if (id == kPad || id == kBos || id == kEos) continue;
    out.push_back(token(id));
  }
  return out;
}

}  // namespace desmine::text
