#include "text/bleu.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "util/error.h"

namespace desmine::text {

namespace {

/// Count n-grams of one order in a sentence. N-grams are keyed by joining
/// tokens with '\x1f' (a separator that cannot occur in sensor words).
/// Fallback path for sentence pairs the packed-key fast path cannot encode.
std::map<std::string, std::size_t> ngram_counts(const Sentence& sentence,
                                                std::size_t order) {
  std::map<std::string, std::size_t> counts;
  if (sentence.size() < order) return counts;
  for (std::size_t i = 0; i + order <= sentence.size(); ++i) {
    std::string key = sentence[i];
    for (std::size_t k = 1; k < order; ++k) {
      key += '\x1f';
      key += sentence[i + k];
    }
    ++counts[key];
  }
  return counts;
}

/// Running clipped-match totals for one candidate/reference pair, shared by
/// the map fallback and the packed fast path. Both produce the same counts,
/// so BLEU scores are bit-identical whichever path ran.
void accumulate_pair_map(const Sentence& cand, const Sentence& ref,
                         std::size_t max_order, std::size_t* matched,
                         std::size_t* total) {
  for (std::size_t order = 1; order <= max_order; ++order) {
    const auto cand_counts = ngram_counts(cand, order);
    const auto ref_counts = ngram_counts(ref, order);
    for (const auto& [gram, count] : cand_counts) {
      total[order - 1] += count;
      const auto it = ref_counts.find(gram);
      if (it != ref_counts.end()) {
        // Modified precision: clip by the reference count.
        matched[order - 1] += std::min(count, it->second);
      }
    }
  }
}

/// Scratch buffers for the packed fast path, reused across the sentences of
/// a corpus so the steady-state cost is sorting two small vectors per order.
struct PackScratch {
  std::vector<const std::string*> dict;  ///< shared token dictionary
  std::vector<std::uint64_t> cand_ids, ref_ids;
  std::vector<std::uint64_t> cand_keys, ref_keys;
};

/// The serve hot path scores one short candidate/reference pair per
/// (window, edge) work item; the map path above allocates ~8 string-keyed
/// maps per pair, which dominates the batched scorer once decoding is
/// vectorized (DESIGN.md §16). This path maps tokens to small ids through a
/// dictionary shared by both sentences, packs each n-gram into one uint64
/// (16 bits per token, orders 1..4), and counts via sort + linear merge —
/// no per-n-gram allocations. Returns false when the pair cannot be packed
/// (order > 4 or very long sentences); the caller then uses the map path.
bool accumulate_pair_packed(const Sentence& cand, const Sentence& ref,
                            std::size_t max_order, std::size_t* matched,
                            std::size_t* total, PackScratch& scratch) {
  // 16-bit ids and 4 ids per key; the length cap also bounds the O(n^2)
  // linear-scan dictionary build to small n.
  constexpr std::size_t kMaxTokens = 512;
  if (max_order > 4 || cand.size() + ref.size() > kMaxTokens) return false;

  scratch.dict.clear();
  const auto id_of = [&scratch](const std::string& token) -> std::uint64_t {
    for (std::size_t i = 0; i < scratch.dict.size(); ++i) {
      if (*scratch.dict[i] == token) return i;
    }
    scratch.dict.push_back(&token);
    return scratch.dict.size() - 1;
  };
  scratch.cand_ids.clear();
  scratch.ref_ids.clear();
  for (const std::string& t : cand) scratch.cand_ids.push_back(id_of(t));
  for (const std::string& t : ref) scratch.ref_ids.push_back(id_of(t));

  const auto collect_keys = [](const std::vector<std::uint64_t>& ids,
                               std::size_t order,
                               std::vector<std::uint64_t>& keys) {
    keys.clear();
    if (ids.size() < order) return;
    for (std::size_t i = 0; i + order <= ids.size(); ++i) {
      std::uint64_t key = 1;  // leading 1 separates orders' key spaces
      for (std::size_t k = 0; k < order; ++k) key = (key << 16) | ids[i + k];
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
  };

  for (std::size_t order = 1; order <= max_order; ++order) {
    collect_keys(scratch.cand_ids, order, scratch.cand_keys);
    collect_keys(scratch.ref_ids, order, scratch.ref_keys);
    total[order - 1] += scratch.cand_keys.size();
    // Merge the two sorted runs, clipping each candidate n-gram's count by
    // its reference count — exactly the map path's modified precision.
    std::size_t c = 0, r = 0;
    while (c < scratch.cand_keys.size() && r < scratch.ref_keys.size()) {
      const std::uint64_t key = scratch.cand_keys[c];
      if (scratch.ref_keys[r] < key) {
        ++r;
        continue;
      }
      std::size_t c_run = 0;
      while (c < scratch.cand_keys.size() && scratch.cand_keys[c] == key) {
        ++c;
        ++c_run;
      }
      if (scratch.ref_keys[r] == key) {
        std::size_t r_run = 0;
        while (r < scratch.ref_keys.size() && scratch.ref_keys[r] == key) {
          ++r;
          ++r_run;
        }
        matched[order - 1] += std::min(c_run, r_run);
      }
    }
    // Candidate keys with no reference run left only add to `total`, which
    // the collect step above already did.
  }
  return true;
}

/// Shared scoring tail: turn accumulated clipped counts + lengths into the
/// smoothed geometric-mean BLEU. Identical arithmetic for every entry point.
BleuBreakdown finalize(const std::vector<std::size_t>& matched,
                       const std::vector<std::size_t>& total,
                       std::size_t candidate_length,
                       std::size_t reference_length,
                       const BleuOptions& options) {
  BleuBreakdown out;
  out.precisions.assign(options.max_order, 0.0);
  out.candidate_length = candidate_length;
  out.reference_length = reference_length;

  double log_precision_sum = 0.0;
  for (std::size_t order = 0; order < options.max_order; ++order) {
    double num = static_cast<double>(matched[order]);
    double den = static_cast<double>(total[order]);
    if (options.smooth && (num == 0.0 || den == 0.0)) {
      num += 1.0;
      den += 1.0;
    }
    if (num == 0.0 || den == 0.0) {
      // Unsmoothed zero precision: BLEU is exactly 0.
      out.precisions[order] = 0.0;
      out.score = 0.0;
      out.brevity_penalty =
          out.candidate_length >= out.reference_length
              ? 1.0
              : std::exp(1.0 - static_cast<double>(out.reference_length) /
                                   std::max<double>(1.0, static_cast<double>(
                                                             out.candidate_length)));
      return out;
    }
    out.precisions[order] = num / den;
    log_precision_sum += std::log(num / den);
  }

  const double geo_mean =
      std::exp(log_precision_sum / static_cast<double>(options.max_order));

  if (out.candidate_length >= out.reference_length) {
    out.brevity_penalty = 1.0;
  } else if (out.candidate_length == 0) {
    out.brevity_penalty = 0.0;
  } else {
    out.brevity_penalty =
        std::exp(1.0 - static_cast<double>(out.reference_length) /
                           static_cast<double>(out.candidate_length));
  }

  out.score = 100.0 * geo_mean * out.brevity_penalty;
  return out;
}

}  // namespace

BleuBreakdown corpus_bleu(const Corpus& candidates, const Corpus& references,
                          const BleuOptions& options) {
  DESMINE_EXPECTS(candidates.size() == references.size(),
                  "candidate/reference corpora must align");
  DESMINE_EXPECTS(options.max_order >= 1, "max_order >= 1");

  if (candidates.empty()) {
    BleuBreakdown out;
    out.precisions.assign(options.max_order, 0.0);
    return out;
  }

  std::vector<std::size_t> matched(options.max_order, 0);
  std::vector<std::size_t> total(options.max_order, 0);
  std::size_t candidate_length = 0, reference_length = 0;

  PackScratch scratch;
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    const Sentence& cand = candidates[s];
    const Sentence& ref = references[s];
    candidate_length += cand.size();
    reference_length += ref.size();
    if (!accumulate_pair_packed(cand, ref, options.max_order, matched.data(),
                                total.data(), scratch)) {
      accumulate_pair_map(cand, ref, options.max_order, matched.data(),
                          total.data());
    }
  }
  return finalize(matched, total, candidate_length, reference_length, options);
}

BleuBreakdown sentence_bleu(const Sentence& candidate,
                            const Sentence& reference,
                            const BleuOptions& options) {
  DESMINE_EXPECTS(options.max_order >= 1, "max_order >= 1");
  std::vector<std::size_t> matched(options.max_order, 0);
  std::vector<std::size_t> total(options.max_order, 0);
  PackScratch scratch;
  if (!accumulate_pair_packed(candidate, reference, options.max_order,
                              matched.data(), total.data(), scratch)) {
    accumulate_pair_map(candidate, reference, options.max_order,
                        matched.data(), total.data());
  }
  return finalize(matched, total, candidate.size(), reference.size(), options);
}

}  // namespace desmine::text
