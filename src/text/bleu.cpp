#include "text/bleu.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "util/error.h"

namespace desmine::text {

namespace {

/// Count n-grams of one order in a sentence. N-grams are keyed by joining
/// tokens with '\x1f' (a separator that cannot occur in sensor words).
std::map<std::string, std::size_t> ngram_counts(const Sentence& sentence,
                                                std::size_t order) {
  std::map<std::string, std::size_t> counts;
  if (sentence.size() < order) return counts;
  for (std::size_t i = 0; i + order <= sentence.size(); ++i) {
    std::string key = sentence[i];
    for (std::size_t k = 1; k < order; ++k) {
      key += '\x1f';
      key += sentence[i + k];
    }
    ++counts[key];
  }
  return counts;
}

}  // namespace

BleuBreakdown corpus_bleu(const Corpus& candidates, const Corpus& references,
                          const BleuOptions& options) {
  DESMINE_EXPECTS(candidates.size() == references.size(),
                  "candidate/reference corpora must align");
  DESMINE_EXPECTS(options.max_order >= 1, "max_order >= 1");

  BleuBreakdown out;
  out.precisions.assign(options.max_order, 0.0);
  if (candidates.empty()) return out;

  std::vector<std::size_t> matched(options.max_order, 0);
  std::vector<std::size_t> total(options.max_order, 0);

  for (std::size_t s = 0; s < candidates.size(); ++s) {
    const Sentence& cand = candidates[s];
    const Sentence& ref = references[s];
    out.candidate_length += cand.size();
    out.reference_length += ref.size();

    for (std::size_t order = 1; order <= options.max_order; ++order) {
      const auto cand_counts = ngram_counts(cand, order);
      const auto ref_counts = ngram_counts(ref, order);
      for (const auto& [gram, count] : cand_counts) {
        total[order - 1] += count;
        const auto it = ref_counts.find(gram);
        if (it != ref_counts.end()) {
          // Modified precision: clip by the reference count.
          matched[order - 1] += std::min(count, it->second);
        }
      }
    }
  }

  double log_precision_sum = 0.0;
  for (std::size_t order = 0; order < options.max_order; ++order) {
    double num = static_cast<double>(matched[order]);
    double den = static_cast<double>(total[order]);
    if (options.smooth && (num == 0.0 || den == 0.0)) {
      num += 1.0;
      den += 1.0;
    }
    if (num == 0.0 || den == 0.0) {
      // Unsmoothed zero precision: BLEU is exactly 0.
      out.precisions[order] = 0.0;
      out.score = 0.0;
      out.brevity_penalty =
          out.candidate_length >= out.reference_length
              ? 1.0
              : std::exp(1.0 - static_cast<double>(out.reference_length) /
                                   std::max<double>(1.0, static_cast<double>(
                                                             out.candidate_length)));
      return out;
    }
    out.precisions[order] = num / den;
    log_precision_sum += std::log(num / den);
  }

  const double geo_mean =
      std::exp(log_precision_sum / static_cast<double>(options.max_order));

  if (out.candidate_length >= out.reference_length) {
    out.brevity_penalty = 1.0;
  } else if (out.candidate_length == 0) {
    out.brevity_penalty = 0.0;
  } else {
    out.brevity_penalty =
        std::exp(1.0 - static_cast<double>(out.reference_length) /
                           static_cast<double>(out.candidate_length));
  }

  out.score = 100.0 * geo_mean * out.brevity_penalty;
  return out;
}

BleuBreakdown sentence_bleu(const Sentence& candidate,
                            const Sentence& reference,
                            const BleuOptions& options) {
  return corpus_bleu({candidate}, {reference}, options);
}

}  // namespace desmine::text
