// Streaming window assembly: ticks in, sentence-windows out.
//
// Both the single-stream OnlineDetector and the multi-session serving layer
// (src/serve/) consume one multivariate sample per tick and must cut the
// stream into detection windows — one sentence per kept sensor (§II-A2) —
// before any model runs. WindowAssembler owns exactly that shared half:
// per-sensor character buffering, strict/degraded ingestion (missing-sensor
// throw vs health-tracker taint), window slicing, and bounded-memory buffer
// trimming. What happens to a completed window (immediate detect() vs
// deferred batched scoring) is the caller's business, which keeps the two
// consumers bit-identical by construction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/encryption.h"
#include "core/language.h"
#include "robust/sensor_health.h"
#include "text/bleu.h"

namespace desmine::core {

/// Degraded-mode ingestion policy (shared by OnlineDetector and serve
/// sessions).
struct DegradedConfig {
  bool enabled = false;  ///< false = strict: missing sensors throw
  robust::HealthConfig health{};
};

class WindowAssembler {
 public:
  /// One completed detection window, ready for scoring.
  struct Window {
    std::size_t window_index = 0;  ///< 0-based, in sentence-stride units
    std::size_t end_tick = 0;      ///< tick just past the window's last char
    /// One single-sentence corpus per kept sensor (graph node indexing).
    std::vector<text::Corpus> corpora;
    /// Node indices excluded from this window (degraded mode only): sensors
    /// with a missing or unhealthy tick anywhere in the window's span.
    std::vector<std::size_t> unhealthy;
  };

  /// `encrypter` must be the one the graph was mined with (same kept-sensor
  /// order).
  WindowAssembler(SensorEncrypter encrypter, WindowConfig window,
                  DegradedConfig degraded = {});

  /// Feed one tick: the categorical state of every kept sensor, keyed by
  /// sensor name (unknown states map to <unk>). In strict mode a missing
  /// kept sensor throws robust::MissingSensor; in degraded mode it is
  /// recorded with the health tracker and the tick proceeds. Returns the
  /// completed window whenever this tick finished one.
  std::optional<Window> push(const std::map<std::string, std::string>& states);

  /// Ticks consumed so far.
  std::size_t ticks() const { return ticks_; }
  /// Windows emitted so far.
  std::size_t windows_emitted() const { return next_window_; }
  const SensorEncrypter& encrypter() const { return encrypter_; }
  const WindowConfig& window_config() const { return language_.config(); }
  bool degraded_enabled() const { return degraded_.enabled; }
  /// Health states (degraded mode; all-healthy in strict mode).
  const robust::SensorHealthTracker& health() const { return health_; }

 private:
  /// First stream position (char index) of window w and its char span.
  std::size_t window_start(std::size_t w) const;
  std::size_t window_span() const;

  SensorEncrypter encrypter_;
  LanguageGenerator language_;
  DegradedConfig degraded_;
  robust::SensorHealthTracker health_;
  std::vector<std::string> buffers_;  ///< encrypted chars per kept sensor
  /// Per kept sensor, one flag per buffered tick: 1 when the tick must not
  /// contribute to a verdict (missing sample, or sensor unhealthy after
  /// observing it). Trimmed in lockstep with buffers_.
  std::vector<std::vector<std::uint8_t>> taints_;
  std::size_t ticks_ = 0;
  std::size_t next_window_ = 0;
  std::size_t trimmed_ = 0;  ///< chars dropped from the buffer fronts
};

}  // namespace desmine::core
