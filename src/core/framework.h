// End-to-end facade over the paper's analytics framework (Fig. 1):
// multivariate discrete event sequences -> sensor languages -> pairwise NMT
// models -> multivariate relationship graph -> anomaly detection.
//
// Typical use:
//   Framework fw(config);
//   fw.fit(train_series, dev_series);           // offline (Algorithm 1)
//   auto result = fw.detect(test_series);       // online  (Algorithm 2)
//   const MvrGraph& g = fw.graph();             // knowledge discovery
#pragma once

#include <optional>

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/event.h"
#include "core/language.h"
#include "core/miner.h"
#include "core/mvr_graph.h"
#include "robust/sensor_health.h"

namespace desmine::core {

struct FrameworkConfig {
  WindowConfig window{};
  MinerConfig miner{};
  DetectorConfig detector{};
};

class Framework {
 public:
  explicit Framework(FrameworkConfig config);

  /// Offline training: fit the encrypter on `train` (dropping constant
  /// sensors), build languages, and mine the relationship graph. BLEU
  /// scores s(i,j) are measured on `dev` (both from normal operation).
  void fit(const MultivariateSeries& train, const MultivariateSeries& dev);

  /// Online detection over a test series (must contain every kept sensor).
  /// `precision` selects the per-edge decode mode (DetectOptions::precision,
  /// DESIGN.md §16); kF32 is the reference path.
  DetectionResult detect(
      const MultivariateSeries& test,
      tensor::Precision precision = tensor::Precision::kF32) const;

  /// Degraded-mode batch detection (DESIGN.md §8): replay the test series
  /// through a sensor-health tracker, exclude unhealthy sensors per window,
  /// renormalize a_t over the surviving edges, and gate verdicts on
  /// config().detector.min_coverage. `missing_ticks` lists tick indices
  /// whose source rows were quarantined at ingestion (io::CsvReport).
  DetectionResult detect_degraded(
      const MultivariateSeries& test, const robust::HealthConfig& health,
      const std::vector<std::size_t>& missing_ticks = {},
      tensor::Precision precision = tensor::Precision::kF32) const;

  /// Aligned sentence corpora for the kept sensors, indexed like the graph's
  /// nodes. Exposed for benches that score custom windows.
  std::vector<text::Corpus> to_corpora(const MultivariateSeries& series) const;

  /// Restore a previously fitted state (used by io::load_framework). The
  /// encrypter and graph must come from a matching fit() run.
  void restore(SensorEncrypter encrypter, MvrGraph graph);

  bool fitted() const { return encrypter_.has_value(); }
  const SensorEncrypter& encrypter() const;
  const MvrGraph& graph() const;
  const LanguageGenerator& language() const { return language_; }
  const FrameworkConfig& config() const { return config_; }

 private:
  FrameworkConfig config_;
  LanguageGenerator language_;
  std::optional<SensorEncrypter> encrypter_;
  std::optional<MvrGraph> graph_;
};

}  // namespace desmine::core
