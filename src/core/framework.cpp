#include "core/framework.h"

#include "core/online.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/error.h"

namespace desmine::core {

Framework::Framework(FrameworkConfig config)
    : config_(std::move(config)), language_(config_.window) {}

void Framework::fit(const MultivariateSeries& train,
                    const MultivariateSeries& dev) {
  obs::Span fit_span("fit");
  {
    const obs::ScopedTimer timer("encrypt");
    encrypter_ = SensorEncrypter::fit(train);
  }
  DESMINE_EXPECTS(encrypter_->kept_sensors().size() >= 2,
                  "fewer than two informative sensors after filtering");
  DESMINE_LOG_INFO("encrypter fitted",
                   {obs::kv("kept", encrypter_->kept_sensors().size()),
                    obs::kv("dropped", encrypter_->dropped_sensors().size())});

  std::vector<SensorLanguage> languages;
  {
    const obs::ScopedTimer timer("language");
    const std::vector<std::string> train_chars = encrypter_->encode_all(train);
    const std::vector<std::string> dev_chars = encrypter_->encode_all(dev);

    languages.reserve(train_chars.size());
    for (std::size_t k = 0; k < train_chars.size(); ++k) {
      SensorLanguage lang;
      lang.name = encrypter_->kept_sensors()[k];
      lang.train = language_.generate(train_chars[k]);
      lang.dev = language_.generate(dev_chars[k]);
      languages.push_back(std::move(lang));
    }
    DESMINE_LOG_DEBUG(
        "languages generated",
        {obs::kv("sensors", languages.size()),
         obs::kv("train_sentences", languages.front().train.size()),
         obs::kv("dev_sentences", languages.front().dev.size())});
  }

  const RelationshipMiner miner(config_.miner);
  graph_ = miner.mine(languages);  // times itself as phase "mine"
}

std::vector<text::Corpus> Framework::to_corpora(
    const MultivariateSeries& series) const {
  DESMINE_EXPECTS(fitted(), "fit() must run first");
  const obs::ScopedTimer timer("encode");
  const std::vector<std::string> chars = encrypter_->encode_all(series);
  std::vector<text::Corpus> corpora;
  corpora.reserve(chars.size());
  for (const std::string& c : chars) corpora.push_back(language_.generate(c));
  return corpora;
}

DetectionResult Framework::detect(const MultivariateSeries& test,
                                  tensor::Precision precision) const {
  DESMINE_EXPECTS(fitted(), "fit() must run first");
  const AnomalyDetector detector(*graph_, config_.detector);
  DetectOptions options;
  options.precision = precision;
  return detector.detect(to_corpora(test), options);
}

DetectionResult Framework::detect_degraded(
    const MultivariateSeries& test, const robust::HealthConfig& health,
    const std::vector<std::size_t>& missing_ticks,
    tensor::Precision precision) const {
  DESMINE_EXPECTS(fitted(), "fit() must run first");
  const HealthMask mask = window_health_mask(*encrypter_, config_.window,
                                             test, health, missing_ticks);
  const AnomalyDetector detector(*graph_, config_.detector);
  DetectOptions options;
  options.unhealthy = &mask;
  options.precision = precision;
  return detector.detect(to_corpora(test), options);
}

void Framework::restore(SensorEncrypter encrypter, MvrGraph graph) {
  DESMINE_EXPECTS(graph.sensor_count() == encrypter.kept_sensors().size(),
                  "graph/encrypter sensor counts disagree");
  encrypter_ = std::move(encrypter);
  graph_ = std::move(graph);
}

const SensorEncrypter& Framework::encrypter() const {
  DESMINE_EXPECTS(fitted(), "fit() must run first");
  return *encrypter_;
}

const MvrGraph& Framework::graph() const {
  DESMINE_EXPECTS(fitted(), "fit() must run first");
  return *graph_;
}

}  // namespace desmine::core
