#include "core/mvr_graph.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace desmine::core {

MvrGraph::MvrGraph(std::vector<std::string> sensor_names)
    : names_(std::move(sensor_names)) {}

void MvrGraph::add_edge(MvrEdge edge) {
  DESMINE_EXPECTS(edge.src < names_.size() && edge.dst < names_.size(),
                  "edge endpoint out of range");
  DESMINE_EXPECTS(edge.src != edge.dst, "self-translation edges not allowed");
  edges_.push_back(std::move(edge));
}

void MvrGraph::add_failure(PairFailure failure) {
  DESMINE_EXPECTS(failure.src < names_.size() && failure.dst < names_.size(),
                  "failure endpoint out of range");
  DESMINE_EXPECTS(failure.src != failure.dst,
                  "self-translation pairs not allowed");
  failures_.push_back(std::move(failure));
}

const std::string& MvrGraph::name(std::size_t node) const {
  DESMINE_EXPECTS(node < names_.size(), "node out of range");
  return names_[node];
}

std::vector<std::size_t> MvrGraph::active_sensors() const {
  std::set<std::size_t> active;
  for (const MvrEdge& e : edges_) {
    active.insert(e.src);
    active.insert(e.dst);
  }
  return {active.begin(), active.end()};
}

std::vector<std::size_t> MvrGraph::in_degrees() const {
  std::vector<std::size_t> deg(names_.size(), 0);
  for (const MvrEdge& e : edges_) ++deg[e.dst];
  return deg;
}

std::vector<std::size_t> MvrGraph::out_degrees() const {
  std::vector<std::size_t> deg(names_.size(), 0);
  for (const MvrEdge& e : edges_) ++deg[e.src];
  return deg;
}

std::vector<std::size_t> MvrGraph::popular_sensors(
    std::size_t min_in_degree) const {
  const std::vector<std::size_t> deg = in_degrees();
  std::vector<std::size_t> popular;
  for (std::size_t v = 0; v < deg.size(); ++v) {
    if (deg[v] >= min_in_degree) popular.push_back(v);
  }
  return popular;
}

MvrGraph MvrGraph::filter_bleu(double lo, double hi) const {
  MvrGraph out(names_);
  out.failures_ = failures_;
  for (const MvrEdge& e : edges_) {
    if (e.bleu >= lo && e.bleu < hi) out.edges_.push_back(e);
  }
  return out;
}

MvrGraph MvrGraph::without_sensors(
    const std::vector<std::size_t>& nodes) const {
  const std::set<std::size_t> removed(nodes.begin(), nodes.end());
  MvrGraph out(names_);
  out.failures_ = failures_;
  for (const MvrEdge& e : edges_) {
    if (removed.count(e.src) == 0 && removed.count(e.dst) == 0) {
      out.edges_.push_back(e);
    }
  }
  return out;
}

graph::Digraph MvrGraph::to_digraph() const {
  graph::Digraph g(names_.size());
  for (const MvrEdge& e : edges_) g.add_edge(e.src, e.dst, e.bleu);
  return g;
}

std::string MvrGraph::to_dot() const { return to_digraph().to_dot(names_); }

}  // namespace desmine::core
