#include "core/online.h"

#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::core {

OnlineDetector::OnlineDetector(const MvrGraph& graph,
                               SensorEncrypter encrypter, WindowConfig window,
                               DetectorConfig detector,
                               DegradedConfig degraded)
    : assembler_(std::move(encrypter), window, degraded),
      detector_(graph, detector) {
  DESMINE_EXPECTS(
      graph.sensor_count() == assembler_.encrypter().kept_sensors().size(),
      "graph/encrypter sensor counts disagree");
}

std::optional<OnlineDetector::WindowResult> OnlineDetector::push(
    const std::map<std::string, std::string>& states) {
  std::optional<WindowAssembler::Window> window = assembler_.push(states);
  obs::metrics().counter("online.ticks").inc();
  if (!window) return std::nullopt;

  HealthMask mask(1);
  mask[0] = window->unhealthy;
  DetectOptions options;
  if (assembler_.degraded_enabled()) options.unhealthy = &mask;
  const DetectionResult result = detector_.detect(window->corpora, options);

  WindowResult out;
  out.window_index = window->window_index;
  out.end_tick = window->end_tick;
  out.anomaly_score = result.anomaly_scores.front();
  out.coverage = result.coverage.front();
  out.degraded = result.degraded.front() != 0;
  out.unhealthy = std::move(window->unhealthy);
  for (std::size_t e : result.broken_edges.front()) {
    out.broken.emplace_back(result.valid_edges[e].src,
                            result.valid_edges[e].dst);
  }
  obs::metrics().counter("online.windows_emitted").inc();
  DESMINE_LOG_DEBUG("online window scored",
                    {obs::kv("window", out.window_index),
                     obs::kv("end_tick", out.end_tick),
                     obs::kv("score", out.anomaly_score),
                     obs::kv("broken", out.broken.size()),
                     obs::kv("coverage", out.coverage),
                     obs::kv("degraded", out.degraded)});
  return out;
}

HealthMask window_health_mask(const SensorEncrypter& encrypter,
                              const WindowConfig& window,
                              const MultivariateSeries& series,
                              const robust::HealthConfig& health,
                              const std::vector<std::size_t>& missing_ticks) {
  const std::vector<std::string> chars = encrypter.encode_all(series);
  DESMINE_EXPECTS(chars.size() == encrypter.kept_sensors().size(),
                  "series must contain every kept sensor");
  const std::size_t ticks = chars.empty() ? 0 : chars.front().size();

  std::vector<std::uint8_t> missing(ticks, 0);
  for (std::size_t t : missing_ticks) {
    DESMINE_EXPECTS(t < ticks, "missing tick beyond the series length");
    missing[t] = 1;
  }

  // Replay the stream through the tracker, recording per-tick taint.
  robust::SensorHealthTracker tracker(encrypter.kept_sensors(), health);
  std::vector<std::vector<std::uint8_t>> taints(
      chars.size(), std::vector<std::uint8_t>(ticks, 0));
  for (std::size_t t = 0; t < ticks; ++t) {
    const bool present = missing[t] == 0;
    for (std::size_t k = 0; k < chars.size(); ++k) {
      const char ch = chars[k][t];
      const robust::SensorState state = tracker.observe(
          k, {present, ch == SensorEncrypter::kUnknownChar, ch});
      taints[k][t] =
          (!present || state != robust::SensorState::kHealthy) ? 1 : 0;
    }
  }

  const std::size_t span =
      (window.sentence_length - 1) * window.word_stride + window.word_length;
  const std::size_t stride = window.sentence_stride * window.word_stride;
  const std::size_t windows = ticks < span ? 0 : (ticks - span) / stride + 1;

  HealthMask mask(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t start = w * stride;
    for (std::size_t k = 0; k < chars.size(); ++k) {
      const auto& taint = taints[k];
      for (std::size_t i = start; i < start + span; ++i) {
        if (taint[i]) {
          mask[w].push_back(k);
          break;
        }
      }
    }
  }
  return mask;
}

}  // namespace desmine::core
