#include "core/online.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::core {

OnlineDetector::OnlineDetector(const MvrGraph& graph,
                               SensorEncrypter encrypter, WindowConfig window,
                               DetectorConfig detector)
    : encrypter_(std::move(encrypter)),
      language_(window),
      detector_(graph, detector) {
  DESMINE_EXPECTS(graph.sensor_count() == encrypter_.kept_sensors().size(),
                  "graph/encrypter sensor counts disagree");
  buffers_.resize(encrypter_.kept_sensors().size());
}

std::size_t OnlineDetector::window_span() const {
  const WindowConfig& w = language_.config();
  return (w.sentence_length - 1) * w.word_stride + w.word_length;
}

std::size_t OnlineDetector::window_start(std::size_t w) const {
  const WindowConfig& cfg = language_.config();
  return w * cfg.sentence_stride * cfg.word_stride;
}

std::optional<OnlineDetector::WindowResult> OnlineDetector::push(
    const std::map<std::string, std::string>& states) {
  const auto& kept = encrypter_.kept_sensors();
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const auto it = states.find(kept[k]);
    DESMINE_EXPECTS(it != states.end(), "missing state for sensor " + kept[k]);
    buffers_[k] += encrypter_.encode(kept[k], {it->second});
  }
  ++ticks_;
  obs::metrics().counter("online.ticks").inc();

  // Does the stream now cover the next window?
  const std::size_t needed = window_start(next_window_) + window_span();
  if (ticks_ < needed) return std::nullopt;

  // Slice the window's characters per sensor and build one-sentence corpora.
  std::vector<text::Corpus> corpora(buffers_.size());
  const std::size_t start = window_start(next_window_) - trimmed_;
  for (std::size_t k = 0; k < buffers_.size(); ++k) {
    const std::string window_chars =
        buffers_[k].substr(start, window_span());
    text::Corpus sentences = language_.generate(window_chars);
    DESMINE_ENSURES(sentences.size() == 1,
                    "window slice must yield exactly one sentence");
    corpora[k] = std::move(sentences);
  }

  const DetectionResult result = detector_.detect(corpora);
  WindowResult out;
  out.window_index = next_window_;
  out.end_tick = ticks_;
  out.anomaly_score = result.anomaly_scores.front();
  for (std::size_t e : result.broken_edges.front()) {
    out.broken.emplace_back(result.valid_edges[e].src,
                            result.valid_edges[e].dst);
  }
  ++next_window_;
  obs::metrics().counter("online.windows_emitted").inc();
  DESMINE_LOG_DEBUG("online window scored",
                    {obs::kv("window", out.window_index),
                     obs::kv("end_tick", out.end_tick),
                     obs::kv("score", out.anomaly_score),
                     obs::kv("broken", out.broken.size())});

  // Characters before the next window's start are never needed again;
  // trimming in bulk keeps memory bounded on unbounded streams without
  // quadratic erase churn.
  const std::size_t keep_from = window_start(next_window_);
  if (keep_from > trimmed_ + 4096) {
    const std::size_t drop = keep_from - trimmed_;
    for (std::string& buffer : buffers_) buffer.erase(0, drop);
    trimmed_ = keep_from;
  }
  return out;
}

}  // namespace desmine::core
