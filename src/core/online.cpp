#include "core/online.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metrics.h"
#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "util/error.h"

namespace desmine::core {

OnlineDetector::OnlineDetector(const MvrGraph& graph,
                               SensorEncrypter encrypter, WindowConfig window,
                               DetectorConfig detector,
                               DegradedConfig degraded)
    : encrypter_(std::move(encrypter)),
      language_(window),
      detector_(graph, detector),
      degraded_(degraded),
      health_(encrypter_.kept_sensors(), degraded.health) {
  DESMINE_EXPECTS(graph.sensor_count() == encrypter_.kept_sensors().size(),
                  "graph/encrypter sensor counts disagree");
  buffers_.resize(encrypter_.kept_sensors().size());
  taints_.resize(encrypter_.kept_sensors().size());
}

std::size_t OnlineDetector::window_span() const {
  const WindowConfig& w = language_.config();
  return (w.sentence_length - 1) * w.word_stride + w.word_length;
}

std::size_t OnlineDetector::window_start(std::size_t w) const {
  const WindowConfig& cfg = language_.config();
  return w * cfg.sentence_stride * cfg.word_stride;
}

std::optional<OnlineDetector::WindowResult> OnlineDetector::push(
    const std::map<std::string, std::string>& states) {
  const auto& kept = encrypter_.kept_sensors();
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const auto it = states.find(kept[k]);
    bool present = it != states.end();
    switch (robust::fire_fault("detect.push",
                               static_cast<std::int64_t>(k))) {
      case robust::FaultAction::kThrow:
        throw RuntimeError("injected fault at detect.push for sensor " +
                           kept[k]);
      case robust::FaultAction::kDrop:
        present = false;  // simulated sensor dropout for this tick
        break;
      default:
        break;
    }
    if (!present && !degraded_.enabled) {
      throw robust::MissingSensor(kept[k], ticks_);
    }
    // A missing tick still occupies one buffer slot so the kept sensors'
    // streams stay tick-aligned; the filler never reaches a verdict
    // because the taint flag excludes every window covering it.
    const char ch = present
                        ? encrypter_.encode(kept[k], {it->second}).front()
                        : SensorEncrypter::kUnknownChar;
    buffers_[k] += ch;
    bool tainted = false;
    if (degraded_.enabled) {
      const robust::SensorState state = health_.observe(
          k, {present, ch == SensorEncrypter::kUnknownChar, ch});
      tainted = !present || state != robust::SensorState::kHealthy;
    }
    taints_[k].push_back(tainted ? 1 : 0);
  }
  ++ticks_;
  obs::metrics().counter("online.ticks").inc();

  // Does the stream now cover the next window?
  const std::size_t needed = window_start(next_window_) + window_span();
  if (ticks_ < needed) return std::nullopt;

  // Slice the window's characters per sensor and build one-sentence corpora.
  std::vector<text::Corpus> corpora(buffers_.size());
  const std::size_t start = window_start(next_window_) - trimmed_;
  const std::size_t span = window_span();
  for (std::size_t k = 0; k < buffers_.size(); ++k) {
    const std::string window_chars = buffers_[k].substr(start, span);
    text::Corpus sentences = language_.generate(window_chars);
    DESMINE_ENSURES(sentences.size() == 1,
                    "window slice must yield exactly one sentence");
    corpora[k] = std::move(sentences);
  }

  // Degraded mode: a sensor leaves this window's valid set when any tick
  // the window covers is tainted (missing sample or unhealthy state).
  HealthMask mask(1);
  if (degraded_.enabled) {
    for (std::size_t k = 0; k < taints_.size(); ++k) {
      const auto& taint = taints_[k];
      const bool bad = std::any_of(taint.begin() + static_cast<long>(start),
                                   taint.begin() + static_cast<long>(start + span),
                                   [](std::uint8_t t) { return t != 0; });
      if (bad) mask[0].push_back(k);
    }
  }

  const DetectionResult result =
      detector_.detect(corpora, degraded_.enabled ? &mask : nullptr);
  WindowResult out;
  out.window_index = next_window_;
  out.end_tick = ticks_;
  out.anomaly_score = result.anomaly_scores.front();
  out.coverage = result.coverage.front();
  out.degraded = result.degraded.front() != 0;
  out.unhealthy = std::move(mask[0]);
  for (std::size_t e : result.broken_edges.front()) {
    out.broken.emplace_back(result.valid_edges[e].src,
                            result.valid_edges[e].dst);
  }
  ++next_window_;
  obs::metrics().counter("online.windows_emitted").inc();
  DESMINE_LOG_DEBUG("online window scored",
                    {obs::kv("window", out.window_index),
                     obs::kv("end_tick", out.end_tick),
                     obs::kv("score", out.anomaly_score),
                     obs::kv("broken", out.broken.size()),
                     obs::kv("coverage", out.coverage),
                     obs::kv("degraded", out.degraded)});

  // Characters before the next window's start are never needed again;
  // trimming in bulk keeps memory bounded on unbounded streams without
  // quadratic erase churn.
  const std::size_t keep_from = window_start(next_window_);
  if (keep_from > trimmed_ + 4096) {
    const std::size_t drop = keep_from - trimmed_;
    for (std::string& buffer : buffers_) buffer.erase(0, drop);
    for (auto& taint : taints_) {
      taint.erase(taint.begin(), taint.begin() + static_cast<long>(drop));
    }
    trimmed_ = keep_from;
  }
  return out;
}

HealthMask window_health_mask(const SensorEncrypter& encrypter,
                              const WindowConfig& window,
                              const MultivariateSeries& series,
                              const robust::HealthConfig& health,
                              const std::vector<std::size_t>& missing_ticks) {
  const std::vector<std::string> chars = encrypter.encode_all(series);
  DESMINE_EXPECTS(chars.size() == encrypter.kept_sensors().size(),
                  "series must contain every kept sensor");
  const std::size_t ticks = chars.empty() ? 0 : chars.front().size();

  std::vector<std::uint8_t> missing(ticks, 0);
  for (std::size_t t : missing_ticks) {
    DESMINE_EXPECTS(t < ticks, "missing tick beyond the series length");
    missing[t] = 1;
  }

  // Replay the stream through the tracker, recording per-tick taint.
  robust::SensorHealthTracker tracker(encrypter.kept_sensors(), health);
  std::vector<std::vector<std::uint8_t>> taints(
      chars.size(), std::vector<std::uint8_t>(ticks, 0));
  for (std::size_t t = 0; t < ticks; ++t) {
    const bool present = missing[t] == 0;
    for (std::size_t k = 0; k < chars.size(); ++k) {
      const char ch = chars[k][t];
      const robust::SensorState state = tracker.observe(
          k, {present, ch == SensorEncrypter::kUnknownChar, ch});
      taints[k][t] =
          (!present || state != robust::SensorState::kHealthy) ? 1 : 0;
    }
  }

  const std::size_t span =
      (window.sentence_length - 1) * window.word_stride + window.word_length;
  const std::size_t stride = window.sentence_stride * window.word_stride;
  const std::size_t windows = ticks < span ? 0 : (ticks - span) / stride + 1;

  HealthMask mask(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t start = w * stride;
    for (std::size_t k = 0; k < chars.size(); ++k) {
      const auto& taint = taints[k];
      for (std::size_t i = start; i < start + span; ++i) {
        if (taint[i]) {
          mask[w].push_back(k);
          break;
        }
      }
    }
  }
  return mask;
}

}  // namespace desmine::core
