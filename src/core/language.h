// Language sequence generation (§II-A2): characters -> words -> sentences.
//
// Words are fixed-length character windows (length i, sliding window j);
// sentences are fixed-length word windows (length m, sliding window n).
// Because every sensor uses the same window configuration over equally long
// character streams, sentence k of any two sensors covers the same time
// span — that alignment is what makes the corpora "parallel" for the NMT
// model. The sentence stride n sets the detection granularity.
#pragma once

#include <string>

#include "text/vocabulary.h"

namespace desmine::core {

struct WindowConfig {
  std::size_t word_length = 10;     ///< i — characters per word (paper: 10)
  std::size_t word_stride = 1;      ///< j — character slide (paper: 1)
  std::size_t sentence_length = 20; ///< m — words per sentence (paper: 20)
  std::size_t sentence_stride = 20; ///< n — word slide (paper: 20)
};

class LanguageGenerator {
 public:
  explicit LanguageGenerator(WindowConfig config);

  const WindowConfig& config() const { return config_; }

  /// Slide a word window over the character stream. Characters that do not
  /// fill a complete window are dropped (sequences are long relative to i).
  std::vector<std::string> to_words(const std::string& chars) const;

  /// Slide a sentence window over a word stream; incomplete tails dropped.
  text::Corpus to_sentences(const std::vector<std::string>& words) const;

  /// chars -> sentences in one call.
  text::Corpus generate(const std::string& chars) const;

  /// Number of sentences generate() yields for a character stream of length
  /// `chars` (0 when the stream is too short).
  std::size_t sentence_count(std::size_t chars) const;

  /// Number of distinct words in a character stream (the sensor's
  /// vocabulary size, Fig. 3b).
  std::size_t vocabulary_size(const std::string& chars) const;

 private:
  WindowConfig config_;
};

}  // namespace desmine::core
