#include "core/miner.h"

#include <chrono>
#include <memory>
#include <mutex>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace desmine::core {

RelationshipMiner::RelationshipMiner(MinerConfig config)
    : config_(std::move(config)) {}

MvrGraph RelationshipMiner::mine(
    const std::vector<SensorLanguage>& languages) const {
  DESMINE_EXPECTS(languages.size() >= 2, "mining needs at least two sensors");
  const std::size_t n = languages.size();
  for (const SensorLanguage& lang : languages) {
    DESMINE_EXPECTS(lang.train.size() == languages.front().train.size(),
                    "training corpora must be aligned across sensors");
    DESMINE_EXPECTS(lang.dev.size() == languages.front().dev.size(),
                    "development corpora must be aligned across sensors");
    DESMINE_EXPECTS(!lang.train.empty(), "empty training corpus for " +
                                             lang.name);
    DESMINE_EXPECTS(!lang.dev.empty(), "empty dev corpus for " + lang.name);
  }

  std::vector<std::string> names;
  names.reserve(n);
  for (const SensorLanguage& lang : languages) names.push_back(lang.name);
  MvrGraph graph(std::move(names));

  // Enumerate ordered pairs once so pair index -> seed is stable regardless
  // of thread interleaving.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }

  const util::Rng master(config_.seed);
  std::vector<MvrEdge> results(pairs.size());

  const obs::ScopedTimer mine_timer("mine", {obs::kv("sensors", n),
                                             obs::kv("pairs", pairs.size())});
  obs::Counter& pairs_trained = obs::metrics().counter("miner.pairs_trained");
  obs::Histogram& pair_wall_ms =
      obs::metrics().histogram("miner.pair_wall_ms");
  obs::Histogram& pair_bleu = obs::metrics().histogram("miner.pair_bleu");

  auto train_pair = [&](std::size_t p) {
    const auto [i, j] = pairs[p];
    const SensorLanguage& src = languages[i];
    const SensorLanguage& dst = languages[j];

    obs::Span span("train-pair",
                   {obs::kv("src", src.name), obs::kv("dst", dst.name)});
    const auto start = std::chrono::steady_clock::now();
    nmt::TrainingHistory history;
    nmt::TranslationModel model = nmt::train_translation_model(
        src.train, dst.train, config_.translation, master.fork(p).seed(),
        &history);
    text::BleuBreakdown dev_score;
    {
      obs::Span score_span("bleu-score");
      dev_score = model.score(src.dev, dst.dev, config_.translation.bleu);
    }
    const auto end = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    span.annotate(obs::kv("bleu", dev_score.score));

    pairs_trained.inc();
    pair_wall_ms.record(wall_ms);
    pair_bleu.record(dev_score.score);
    DESMINE_LOG_DEBUG("pair model trained",
                      {obs::kv("pair", p), obs::kv("src", src.name),
                       obs::kv("dst", dst.name),
                       obs::kv("bleu", dev_score.score),
                       obs::kv("wall_ms", wall_ms),
                       obs::kv("steps", history.steps_run)});
    if (config_.on_pair) {
      PairEvent event;
      event.pair_index = p;
      event.pair_count = pairs.size();
      event.src = i;
      event.dst = j;
      event.src_name = src.name;
      event.dst_name = dst.name;
      event.bleu = dev_score.score;
      event.wall_ms = wall_ms;
      event.steps_run = history.steps_run;
      config_.on_pair(event);
    }

    MvrEdge edge;
    edge.src = i;
    edge.dst = j;
    edge.bleu = dev_score.score;
    edge.runtime_seconds =
        std::chrono::duration<double>(end - start).count();
    edge.model = std::make_shared<nmt::TranslationModel>(std::move(model));
    results[p] = std::move(edge);
  };

  if (config_.threads == 1) {
    for (std::size_t p = 0; p < pairs.size(); ++p) train_pair(p);
  } else {
    util::ThreadPool pool(config_.threads);
    pool.parallel_for(pairs.size(), train_pair);
  }

  for (MvrEdge& edge : results) graph.add_edge(std::move(edge));
  DESMINE_LOG_INFO("relationship mining complete",
                   {obs::kv("sensors", n), obs::kv("pairs", pairs.size()),
                    obs::kv("wall_ms", mine_timer.elapsed_ms())});
  return graph;
}

}  // namespace desmine::core
