#include "core/miner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "io/serialize.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/deadline.h"
#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "tensor/workspace.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace desmine::core {

namespace {

/// Fingerprint of everything that makes pair BLEU scores comparable across
/// runs: the sensor set, corpus sizes, NMT settings, and the master seed.
/// A resume against a journal with a different fingerprint would silently
/// mix incomparable scores, so the miner refuses it.
std::uint32_t mining_fingerprint(const std::vector<SensorLanguage>& languages,
                                 const MinerConfig& config) {
  std::string s;
  s += std::to_string(languages.size()) + "|";
  for (const SensorLanguage& lang : languages) s += lang.name + ",";
  s += "|" + std::to_string(languages.front().train.size());
  s += "|" + std::to_string(languages.front().dev.size());
  const nmt::TranslationConfig& t = config.translation;
  s += "|" + std::to_string(t.trainer.steps);
  s += "|" + std::to_string(t.trainer.batch_size);
  s += "|" + std::to_string(t.trainer.lr);
  s += "|" + std::to_string(t.model.embedding_dim);
  s += "|" + std::to_string(t.model.hidden_dim);
  s += "|" + std::to_string(t.model.num_layers);
  s += "|" + std::to_string(t.model.dropout);
  s += "|" + std::to_string(config.seed);
  return util::crc32(s);
}

}  // namespace

RelationshipMiner::RelationshipMiner(MinerConfig config)
    : config_(std::move(config)) {}

MvrGraph RelationshipMiner::mine(
    const std::vector<SensorLanguage>& languages) const {
  DESMINE_EXPECTS(languages.size() >= 2, "mining needs at least two sensors");
  const std::size_t n = languages.size();
  for (const SensorLanguage& lang : languages) {
    DESMINE_EXPECTS(lang.train.size() == languages.front().train.size(),
                    "training corpora must be aligned across sensors");
    DESMINE_EXPECTS(lang.dev.size() == languages.front().dev.size(),
                    "development corpora must be aligned across sensors");
    DESMINE_EXPECTS(!lang.train.empty(), "empty training corpus for " +
                                             lang.name);
    DESMINE_EXPECTS(!lang.dev.empty(), "empty dev corpus for " + lang.name);
  }

  std::vector<std::string> names;
  names.reserve(n);
  for (const SensorLanguage& lang : languages) names.push_back(lang.name);
  MvrGraph graph(std::move(names));

  // Enumerate ordered pairs once so pair index -> seed is stable regardless
  // of thread interleaving.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }

  const util::Rng master(config_.seed);
  std::vector<MvrEdge> results(pairs.size());
  std::vector<char> done(pairs.size(), 0);

  const obs::ScopedTimer mine_timer("mine", {obs::kv("sensors", n),
                                             obs::kv("pairs", pairs.size())});
  obs::Counter& pairs_trained = obs::metrics().counter("miner.pairs_trained");
  obs::Counter& pair_retries = obs::metrics().counter("miner.pair.retries");
  obs::Counter& pair_failed = obs::metrics().counter("miner.pair.failed");
  obs::Counter& pairs_skipped =
      obs::metrics().counter("checkpoint.pairs_skipped");
  obs::Counter& pairs_journaled =
      obs::metrics().counter("checkpoint.pairs_journaled");
  obs::Histogram& pair_wall_ms =
      obs::metrics().histogram("miner.pair_wall_ms");
  obs::Histogram& pair_bleu = obs::metrics().histogram("miner.pair_bleu");

  // ---- checkpoint setup ----------------------------------------------------
  const std::uint32_t fingerprint = mining_fingerprint(languages, config_);
  std::unique_ptr<robust::CheckpointJournal> journal;
  std::map<std::size_t, robust::PairRecord> completed;
  if (!config_.checkpoint_path.empty()) {
    bool append = false;
    if (config_.resume) {
      const robust::CheckpointState state =
          robust::load_checkpoint(config_.checkpoint_path);
      if (state.exists && state.has_header) {
        if (state.fingerprint != fingerprint) {
          throw RuntimeError(
              "checkpoint " + config_.checkpoint_path +
              " was written under a different mining configuration; refusing "
              "to resume (delete it or rerun without --resume)");
        }
        completed = state.completed;
        append = true;
        DESMINE_LOG_INFO(
            "resuming from checkpoint",
            {obs::kv("path", config_.checkpoint_path),
             obs::kv("completed", completed.size()),
             obs::kv("failed_records", state.failed_records),
             obs::kv("skipped_lines", state.skipped_lines)});
      } else if (state.exists) {
        DESMINE_LOG_WARN("checkpoint has no valid header; starting fresh",
                         {obs::kv("path", config_.checkpoint_path)});
      }
    }
    std::filesystem::create_directories(
        robust::checkpoint_model_dir(config_.checkpoint_path));
    journal = std::make_unique<robust::CheckpointJournal>(
        config_.checkpoint_path, append);
    if (!append) journal->write_header(fingerprint, pairs.size());
  }

  // ---- per-pair task -------------------------------------------------------
  std::atomic<bool> abort_requested{false};
  const auto aborted = [&] {
    return abort_requested.load(std::memory_order_relaxed) ||
           (config_.should_abort && config_.should_abort());
  };

  std::mutex failure_mutex;
  std::vector<PairFailure> failures;

  const auto deliver_event = [&](std::size_t p, const MvrEdge& edge,
                                 std::size_t steps, std::size_t attempts,
                                 double wall_ms, bool resumed) {
    pairs_trained.inc();
    pair_wall_ms.record(wall_ms);
    pair_bleu.record(edge.bleu);
    if (!config_.on_pair) return;
    PairEvent event;
    event.pair_index = p;
    event.pair_count = pairs.size();
    event.src = edge.src;
    event.dst = edge.dst;
    event.src_name = languages[edge.src].name;
    event.dst_name = languages[edge.dst].name;
    event.bleu = edge.bleu;
    event.wall_ms = wall_ms;
    event.steps_run = steps;
    event.attempts = attempts;
    event.resumed = resumed;
    config_.on_pair(event);
  };

  const auto train_pair = [&](std::size_t p) {
    if (aborted()) return;
    const auto [i, j] = pairs[p];
    const SensorLanguage& src = languages[i];
    const SensorLanguage& dst = languages[j];

    // Resume: restore an already-scored pair bit-identically.
    if (const auto it = completed.find(p); it != completed.end()) {
      const robust::PairRecord& rec = it->second;
      if (rec.src == i && rec.dst == j) {
        MvrEdge edge;
        edge.src = i;
        edge.dst = j;
        edge.bleu = rec.bleu;
        edge.runtime_seconds = rec.runtime_s;
        bool restored = true;
        if (!rec.model_file.empty()) {
          try {
            edge.model = std::make_shared<nmt::TranslationModel>(
                io::load_pair_model(rec.model_file));
          } catch (const std::exception& e) {
            // Corrupt sidecar: fall through and retrain — determinism makes
            // the retrained pair identical to the journaled one.
            DESMINE_LOG_WARN("checkpoint model unreadable; retraining pair",
                             {obs::kv("pair", p), obs::kv("file",
                                                          rec.model_file),
                              obs::kv("error", e.what())});
            restored = false;
          }
        }
        if (restored) {
          pairs_skipped.inc();
          DESMINE_LOG_DEBUG("pair restored from checkpoint",
                            {obs::kv("pair", p), obs::kv("src", src.name),
                             obs::kv("dst", dst.name),
                             obs::kv("bleu", edge.bleu)});
          deliver_event(p, edge, rec.steps, rec.attempts, 0.0, true);
          results[p] = std::move(edge);
          done[p] = 1;
          return;
        }
      } else {
        DESMINE_LOG_WARN("checkpoint pair endpoints disagree; retraining",
                         {obs::kv("pair", p)});
      }
    }

    util::Rng backoff_rng = master.fork(p).fork(0xBACC0FFull);
    std::string last_error;
    std::size_t attempts = 0;
    const std::size_t max_attempts = config_.retry.max_retries + 1;

    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (aborted()) return;
      attempts = attempt + 1;
      try {
        const robust::FaultAction action =
            robust::fire_fault("miner.pair", static_cast<std::int64_t>(p));
        if (action == robust::FaultAction::kThrow) {
          throw RuntimeError("injected fault at pair " + std::to_string(p));
        }
        if (action == robust::FaultAction::kAbort) {
          abort_requested.store(true, std::memory_order_relaxed);
          return;
        }

        nmt::TranslationConfig cfg = config_.translation;
        // Retries fork the seed and halve the learning rate: a diverging
        // pair most often needs a gentler step, not the same trajectory.
        cfg.trainer.lr *= static_cast<float>(std::pow(0.5, attempt));
        if (action == robust::FaultAction::kDiverge) {
          cfg.trainer.lr = 1e30f;  // guaranteed loss explosion / NaN
        }
        const std::uint64_t seed = attempt == 0
                                       ? master.fork(p).seed()
                                       : master.fork(p).fork(attempt).seed();

        const robust::Deadline deadline(config_.pair_timeout_s);
        const auto user_step = cfg.trainer.on_step;
        cfg.trainer.on_step = [&deadline,
                               &user_step](const nmt::StepEvent& e) {
          deadline.check("pair training");
          if (user_step) user_step(e);
        };

        obs::Span span("train-pair",
                       {obs::kv("src", src.name), obs::kv("dst", dst.name),
                        obs::kv("attempt", attempt + 1)});
        const auto start = std::chrono::steady_clock::now();
        nmt::TrainingHistory history;
        // One arena per pool thread: successive pairs on the same thread
        // reuse the already-grown chunks instead of re-warming a fresh heap.
        // Rewinding (not releasing) keeps capacity at the high-water mark.
        thread_local tensor::Workspace pair_ws;
        pair_ws.reset();
        nmt::TranslationModel model = nmt::train_translation_model(
            src.train, dst.train, cfg, seed, &history, &pair_ws);
        deadline.check("pair training");
        text::BleuBreakdown dev_score;
        {
          obs::Span score_span("bleu-score");
          dev_score = model.score(src.dev, dst.dev, cfg.bleu);
        }
        const auto end = std::chrono::steady_clock::now();
        const double wall_ms =
            std::chrono::duration<double, std::milli>(end - start).count();
        span.annotate(obs::kv("bleu", dev_score.score));
        // The model outlives this pool thread (it is published to the graph
        // and scored during detection), so it must stop referencing the
        // thread-local arena before leaving this scope.
        model.model().use_own_workspace();

        MvrEdge edge;
        edge.src = i;
        edge.dst = j;
        edge.bleu = dev_score.score;
        edge.runtime_seconds =
            std::chrono::duration<double>(end - start).count();
        edge.model = std::make_shared<nmt::TranslationModel>(std::move(model));

        if (journal) {
          robust::PairRecord rec;
          rec.pair_index = p;
          rec.src = i;
          rec.dst = j;
          rec.ok = true;
          rec.bleu = edge.bleu;
          rec.runtime_s = edge.runtime_seconds;
          rec.steps = history.steps_run;
          rec.attempts = attempts;
          rec.model_file =
              robust::checkpoint_model_file(config_.checkpoint_path, p);
          io::save_pair_model(rec.model_file, *edge.model,
                              config_.translation.model);
          journal->append(rec);
          pairs_journaled.inc();
        }

        DESMINE_LOG_DEBUG("pair model trained",
                          {obs::kv("pair", p), obs::kv("src", src.name),
                           obs::kv("dst", dst.name),
                           obs::kv("bleu", dev_score.score),
                           obs::kv("wall_ms", wall_ms),
                           obs::kv("steps", history.steps_run),
                           obs::kv("attempts", attempts)});
        deliver_event(p, edge, history.steps_run, attempts, wall_ms, false);
        results[p] = std::move(edge);
        done[p] = 1;

        if (robust::fire_fault("miner.pair.done",
                               static_cast<std::int64_t>(p)) ==
            robust::FaultAction::kAbort) {
          abort_requested.store(true, std::memory_order_relaxed);
        }
        return;
      } catch (const robust::DeadlineExceeded& e) {
        // Not retryable: the same step budget would elapse again.
        last_error = e.what();
        break;
      } catch (const std::exception& e) {
        last_error = e.what();
        if (attempt + 1 < max_attempts) {
          pair_retries.inc();
          DESMINE_LOG_WARN(
              "pair training failed; retrying",
              {obs::kv("pair", p), obs::kv("src", src.name),
               obs::kv("dst", dst.name), obs::kv("attempt", attempt + 1),
               obs::kv("error", e.what())});
          config_.retry.backoff(attempt + 1, backoff_rng);
        }
      }
    }

    // Permanently failed: isolate, record, continue with the other pairs.
    pair_failed.inc();
    DESMINE_LOG_ERROR("pair permanently failed",
                      {obs::kv("pair", p), obs::kv("src", src.name),
                       obs::kv("dst", dst.name),
                       obs::kv("attempts", attempts),
                       obs::kv("error", last_error)});
    if (journal) {
      robust::PairRecord rec;
      rec.pair_index = p;
      rec.src = i;
      rec.dst = j;
      rec.ok = false;
      rec.attempts = attempts;
      rec.error = last_error;
      journal->append(rec);
    }
    {
      std::lock_guard lock(failure_mutex);
      failures.push_back(PairFailure{
          i, j, last_error, static_cast<std::uint32_t>(attempts)});
    }
  };

  if (config_.threads == 1) {
    for (std::size_t p = 0; p < pairs.size(); ++p) train_pair(p);
  } else {
    util::ThreadPool pool(config_.threads);
    pool.parallel_for(pairs.size(), train_pair);
  }

  if (aborted()) {
    DESMINE_LOG_WARN("mining aborted",
                     {obs::kv("pairs", pairs.size()),
                      obs::kv("checkpoint", config_.checkpoint_path)});
    throw robust::Interrupted(
        "mining aborted" +
        (config_.checkpoint_path.empty()
             ? std::string(" (no checkpoint configured)")
             : "; completed pairs are journaled in " +
                   config_.checkpoint_path + " — rerun with resume"));
  }

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (done[p]) graph.add_edge(std::move(results[p]));
  }
  // Deterministic failure order (pair enumeration), independent of threads.
  std::sort(failures.begin(), failures.end(),
            [](const PairFailure& a, const PairFailure& b) {
              return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
            });
  for (PairFailure& f : failures) graph.add_failure(std::move(f));

  DESMINE_LOG_INFO("relationship mining complete",
                   {obs::kv("sensors", n), obs::kv("pairs", pairs.size()),
                    obs::kv("failed", graph.failures().size()),
                    obs::kv("wall_ms", mine_timer.elapsed_ms())});
  return graph;
}

}  // namespace desmine::core
