#include "core/window_assembler.h"

#include <algorithm>

#include "robust/errors.h"
#include "robust/fault_injector.h"
#include "util/error.h"

namespace desmine::core {

WindowAssembler::WindowAssembler(SensorEncrypter encrypter,
                                 WindowConfig window, DegradedConfig degraded)
    : encrypter_(std::move(encrypter)),
      language_(window),
      degraded_(degraded),
      health_(encrypter_.kept_sensors(), degraded.health) {
  buffers_.resize(encrypter_.kept_sensors().size());
  taints_.resize(encrypter_.kept_sensors().size());
}

std::size_t WindowAssembler::window_span() const {
  const WindowConfig& w = language_.config();
  return (w.sentence_length - 1) * w.word_stride + w.word_length;
}

std::size_t WindowAssembler::window_start(std::size_t w) const {
  const WindowConfig& cfg = language_.config();
  return w * cfg.sentence_stride * cfg.word_stride;
}

std::optional<WindowAssembler::Window> WindowAssembler::push(
    const std::map<std::string, std::string>& states) {
  const auto& kept = encrypter_.kept_sensors();
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const auto it = states.find(kept[k]);
    bool present = it != states.end();
    switch (robust::fire_fault("detect.push",
                               static_cast<std::int64_t>(k))) {
      case robust::FaultAction::kThrow:
        throw RuntimeError("injected fault at detect.push for sensor " +
                           kept[k]);
      case robust::FaultAction::kDrop:
        present = false;  // simulated sensor dropout for this tick
        break;
      default:
        break;
    }
    if (!present && !degraded_.enabled) {
      throw robust::MissingSensor(kept[k], ticks_);
    }
    // A missing tick still occupies one buffer slot so the kept sensors'
    // streams stay tick-aligned; the filler never reaches a verdict
    // because the taint flag excludes every window covering it.
    const char ch = present
                        ? encrypter_.encode(kept[k], {it->second}).front()
                        : SensorEncrypter::kUnknownChar;
    buffers_[k] += ch;
    bool tainted = false;
    if (degraded_.enabled) {
      const robust::SensorState state = health_.observe(
          k, {present, ch == SensorEncrypter::kUnknownChar, ch});
      tainted = !present || state != robust::SensorState::kHealthy;
    }
    taints_[k].push_back(tainted ? 1 : 0);
  }
  ++ticks_;

  // Does the stream now cover the next window?
  const std::size_t needed = window_start(next_window_) + window_span();
  if (ticks_ < needed) return std::nullopt;

  // Slice the window's characters per sensor and build one-sentence corpora.
  Window out;
  out.corpora.resize(buffers_.size());
  const std::size_t start = window_start(next_window_) - trimmed_;
  const std::size_t span = window_span();
  for (std::size_t k = 0; k < buffers_.size(); ++k) {
    const std::string window_chars = buffers_[k].substr(start, span);
    text::Corpus sentences = language_.generate(window_chars);
    DESMINE_ENSURES(sentences.size() == 1,
                    "window slice must yield exactly one sentence");
    out.corpora[k] = std::move(sentences);
  }

  // Degraded mode: a sensor leaves this window's valid set when any tick
  // the window covers is tainted (missing sample or unhealthy state).
  if (degraded_.enabled) {
    for (std::size_t k = 0; k < taints_.size(); ++k) {
      const auto& taint = taints_[k];
      const bool bad = std::any_of(taint.begin() + static_cast<long>(start),
                                   taint.begin() + static_cast<long>(start + span),
                                   [](std::uint8_t t) { return t != 0; });
      if (bad) out.unhealthy.push_back(k);
    }
  }

  out.window_index = next_window_;
  out.end_tick = ticks_;
  ++next_window_;

  // Characters before the next window's start are never needed again;
  // trimming in bulk keeps memory bounded on unbounded streams without
  // quadratic erase churn.
  const std::size_t keep_from = window_start(next_window_);
  if (keep_from > trimmed_ + 4096) {
    const std::size_t drop = keep_from - trimmed_;
    for (std::string& buffer : buffers_) buffer.erase(0, drop);
    for (auto& taint : taints_) {
      taint.erase(taint.begin(), taint.begin() + static_cast<long>(drop));
    }
    trimmed_ = keep_from;
  }
  return out;
}

}  // namespace desmine::core
