// Sensor encryption (§II-A1): categorical states -> character alphabets.
//
// Two steps from the paper:
//  * Sequence filtering — a sensor whose training events are all identical
//    carries no signal for the translation model and is dropped (it is also
//    excluded from online testing).
//  * Discrete event encryption — each distinct state, sorted in alphanumeric
//    order, is assigned a letter; conceptually prefixed with the sensor name
//    ("s1.a") to keep languages distinct. Unseen states at test time map to
//    the reserved unknown character.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/event.h"

namespace desmine::core {

class SensorEncrypter {
 public:
  /// The reserved character for system states never seen in training
  /// (the paper's <unk>, footnote 1).
  static constexpr char kUnknownChar = '?';

  /// Per-sensor encoding table.
  struct Encoding {
    std::string sensor;
    std::map<std::string, char> to_char;  ///< state -> letter ('a'..)
  };

  /// Fit the encrypter on training data: drops constant sensors, assigns
  /// letters to the surviving sensors' states in alphanumeric state order.
  static SensorEncrypter fit(const MultivariateSeries& train);

  /// Rebuild from persisted encodings (kept order = encoding order); used by
  /// io::load_framework.
  static SensorEncrypter from_encodings(std::vector<Encoding> encodings,
                                        std::vector<std::string> dropped);

  /// Encoding table of a kept sensor (for inspection and serialization).
  const Encoding& encoding(const std::string& sensor) const;

  /// Names of sensors kept after filtering, in input order.
  const std::vector<std::string>& kept_sensors() const { return kept_; }

  /// Names of sensors dropped by sequence filtering.
  const std::vector<std::string>& dropped_sensors() const { return dropped_; }

  bool keeps(const std::string& sensor) const;

  /// Distinct training states of a kept sensor (its cardinality).
  std::size_t cardinality(const std::string& sensor) const;

  /// Encode one kept sensor's events into a character string; unseen states
  /// become kUnknownChar. Throws for dropped/unknown sensors.
  std::string encode(const std::string& sensor,
                     const EventSequence& events) const;

  /// Paper-style token for a state: "<sensor>.<letter>"; for display.
  std::string token(const std::string& sensor, const std::string& state) const;

  /// Encode every kept sensor from a series (sensors not kept are skipped).
  /// Returns strings aligned with kept_sensors().
  std::vector<std::string> encode_all(const MultivariateSeries& series) const;

 private:
  std::map<std::string, Encoding> encodings_;
  std::vector<std::string> kept_;
  std::vector<std::string> dropped_;
};

}  // namespace desmine::core
