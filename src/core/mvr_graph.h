// Multivariate relationship graph (MVRG) — the output of Algorithm 1.
//
// Nodes are kept sensors; two directed edges connect every trained pair,
// weighted by the dev-set BLEU score s(i,j) and carrying the trained NMT
// model g(i,j). Global subgraphs keep only edges whose BLEU falls in a
// score band; local subgraphs additionally remove "popular" nodes (high
// in-degree). Node indices are stable across all derived subgraphs so edge
// identities survive filtering.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "nmt/translation.h"

namespace desmine::core {

struct MvrEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  double bleu = 0.0;  ///< s(src, dst) on the development set
  double runtime_seconds = 0.0;  ///< train+score wall time (Fig. 4a)
  /// The trained directional model g(src, dst); shared between a graph and
  /// its subgraphs. May be null in stats-only graphs.
  std::shared_ptr<nmt::TranslationModel> model;
};

/// A pair whose model could not be trained (diverged, timed out, crashed).
/// The edge is absent from the graph; the reason is kept so a partial MVRG
/// is honest about what it is missing instead of silently thinner.
struct PairFailure {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::string reason;
  std::uint32_t attempts = 0;  ///< training attempts made before giving up
};

class MvrGraph {
 public:
  MvrGraph() = default;
  explicit MvrGraph(std::vector<std::string> sensor_names);

  void add_edge(MvrEdge edge);

  /// Record a pair the miner permanently failed to train (fault isolation).
  void add_failure(PairFailure failure);

  std::size_t sensor_count() const { return names_.size(); }
  const std::vector<std::string>& sensor_names() const { return names_; }
  const std::string& name(std::size_t node) const;
  const std::vector<MvrEdge>& edges() const { return edges_; }
  /// Pairs with no edge because training permanently failed. Subgraph
  /// filters preserve these records (they are metadata, not edges).
  const std::vector<PairFailure>& failures() const { return failures_; }

  /// Nodes that have at least one incident edge (the paper deletes edgeless
  /// nodes from a subgraph; we report them as inactive instead so indices
  /// stay stable).
  std::vector<std::size_t> active_sensors() const;

  std::vector<std::size_t> in_degrees() const;
  std::vector<std::size_t> out_degrees() const;

  /// "Popular" sensors: in-degree >= threshold (paper: 100 at full scale).
  std::vector<std::size_t> popular_sensors(std::size_t min_in_degree) const;

  /// Global subgraph: keep edges with bleu in [lo, hi).
  MvrGraph filter_bleu(double lo, double hi) const;

  /// Local subgraph: drop all edges incident to the given nodes.
  MvrGraph without_sensors(const std::vector<std::size_t>& nodes) const;

  /// Structure-only view for component/community analysis (edge weight =
  /// BLEU score).
  graph::Digraph to_digraph() const;

  /// Graphviz DOT with sensor names as labels.
  std::string to_dot() const;

 private:
  std::vector<std::string> names_;
  std::vector<MvrEdge> edges_;
  std::vector<PairFailure> failures_;
};

}  // namespace desmine::core
