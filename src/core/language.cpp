#include "core/language.h"

#include <set>

#include "util/error.h"

namespace desmine::core {

LanguageGenerator::LanguageGenerator(WindowConfig config) : config_(config) {
  DESMINE_EXPECTS(config.word_length > 0 && config.word_stride > 0,
                  "word window must be positive");
  DESMINE_EXPECTS(config.sentence_length > 0 && config.sentence_stride > 0,
                  "sentence window must be positive");
}

std::vector<std::string> LanguageGenerator::to_words(
    const std::string& chars) const {
  std::vector<std::string> words;
  if (chars.size() < config_.word_length) return words;
  for (std::size_t start = 0; start + config_.word_length <= chars.size();
       start += config_.word_stride) {
    words.push_back(chars.substr(start, config_.word_length));
  }
  return words;
}

text::Corpus LanguageGenerator::to_sentences(
    const std::vector<std::string>& words) const {
  text::Corpus sentences;
  if (words.size() < config_.sentence_length) return sentences;
  for (std::size_t start = 0;
       start + config_.sentence_length <= words.size();
       start += config_.sentence_stride) {
    sentences.emplace_back(
        words.begin() + static_cast<long>(start),
        words.begin() + static_cast<long>(start + config_.sentence_length));
  }
  return sentences;
}

text::Corpus LanguageGenerator::generate(const std::string& chars) const {
  return to_sentences(to_words(chars));
}

std::size_t LanguageGenerator::sentence_count(std::size_t chars) const {
  if (chars < config_.word_length) return 0;
  const std::size_t words =
      (chars - config_.word_length) / config_.word_stride + 1;
  if (words < config_.sentence_length) return 0;
  return (words - config_.sentence_length) / config_.sentence_stride + 1;
}

std::size_t LanguageGenerator::vocabulary_size(const std::string& chars) const {
  const std::vector<std::string> words = to_words(chars);
  return std::set<std::string>(words.begin(), words.end()).size();
}

}  // namespace desmine::core
