// Relationship mining — Algorithm 1 of the paper.
//
// For every ordered pair of sensor languages (i, j), train a directional NMT
// model g(i, j) on aligned training sentences and measure the translation
// score s(i, j) as corpus BLEU on the aligned development sentences. All
// pair models share one architecture/configuration so their BLEU scores are
// comparable. Pairs are independent, so training fans out over a thread
// pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "text/vocabulary.h"

namespace desmine::core {

/// One sensor's language: aligned train/dev sentence corpora (sentence k of
/// every sensor covers the same time window).
struct SensorLanguage {
  std::string name;
  text::Corpus train;
  text::Corpus dev;
};

struct MinerConfig {
  nmt::TranslationConfig translation{};
  std::size_t threads = 0;      ///< 0 = hardware concurrency
  std::uint64_t seed = 42;      ///< master seed; per-pair seeds are forked
};

class RelationshipMiner {
 public:
  explicit RelationshipMiner(MinerConfig config);

  /// Train all N(N-1) directional pair models and assemble the MVRG.
  /// Languages must be aligned: equal train sizes and equal dev sizes.
  MvrGraph mine(const std::vector<SensorLanguage>& languages) const;

  const MinerConfig& config() const { return config_; }

 private:
  MinerConfig config_;
};

}  // namespace desmine::core
