// Relationship mining — Algorithm 1 of the paper.
//
// For every ordered pair of sensor languages (i, j), train a directional NMT
// model g(i, j) on aligned training sentences and measure the translation
// score s(i, j) as corpus BLEU on the aligned development sentences. All
// pair models share one architecture/configuration so their BLEU scores are
// comparable. Pairs are independent, so training fans out over a thread
// pool.
//
// Fault tolerance (ISSUE 2): each pair is isolated — a crash, divergence, or
// deadline overrun in one pair never aborts the run. Failed pairs are
// retried up to retry.max_retries times with a forked seed and a halved
// learning rate; permanently failed pairs are recorded in the MvrGraph as
// absent edges with a reason. With a checkpoint journal configured, every
// finished pair is durably journaled (JSON lines + sidecar model artifact),
// and a resumed run skips already-scored pairs with bit-identical BLEU.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/mvr_graph.h"
#include "nmt/translation.h"
#include "robust/retry.h"
#include "text/vocabulary.h"

namespace desmine::core {

/// One sensor's language: aligned train/dev sentence corpora (sentence k of
/// every sensor covers the same time window).
struct SensorLanguage {
  std::string name;
  text::Corpus train;
  text::Corpus dev;
};

/// One finished directional pair model, delivered through
/// MinerConfig::on_pair as mining progresses. Names point into the miner's
/// language list and are only valid during the callback.
struct PairEvent {
  std::size_t pair_index = 0;  ///< stable enumeration order, 0-based
  std::size_t pair_count = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::string_view src_name;
  std::string_view dst_name;
  double bleu = 0.0;
  double wall_ms = 0.0;
  std::size_t steps_run = 0;  ///< training steps the pair model actually ran
  std::size_t attempts = 1;   ///< training attempts (1 = no retries needed)
  bool resumed = false;       ///< restored from the checkpoint, not trained
};

struct MinerConfig {
  nmt::TranslationConfig translation{};
  std::size_t threads = 0;      ///< 0 = hardware concurrency
  std::uint64_t seed = 42;      ///< master seed; per-pair seeds are forked

  /// Per-pair retry policy. A failed attempt (crash or divergence) is
  /// retried with a forked seed and the learning rate halved per attempt;
  /// deadline overruns are not retried (the budget would just elapse again).
  robust::RetryPolicy retry{};

  /// Wall-clock budget per training attempt in seconds; 0 = unlimited.
  double pair_timeout_s = 0.0;

  /// Append-only JSON-lines checkpoint journal (plus a `.models/` sidecar
  /// directory of per-pair artifacts). Empty disables checkpointing.
  std::string checkpoint_path;

  /// Skip pairs already recorded in the checkpoint journal (their BLEU is
  /// restored bit-identically and the model reloaded from the sidecar).
  /// Resuming against a journal from a different configuration throws.
  bool resume = false;

  /// Polled between pairs; return true to abort mining gracefully (SIGINT).
  /// mine() then throws robust::Interrupted after the journal is flushed.
  std::function<bool()> should_abort;

  /// Progress hook called once per trained pair. Runs on the training
  /// thread (possibly a pool worker); must be thread-safe and cheap.
  std::function<void(const PairEvent&)> on_pair;
};

class RelationshipMiner {
 public:
  explicit RelationshipMiner(MinerConfig config);

  /// Train all N(N-1) directional pair models and assemble the MVRG.
  /// Languages must be aligned: equal train sizes and equal dev sizes.
  /// Pairs that permanently fail are reported via MvrGraph::failures()
  /// rather than aborting; throws robust::Interrupted when aborted via
  /// should_abort (completed pairs stay journaled for resume).
  MvrGraph mine(const std::vector<SensorLanguage>& languages) const;

  const MinerConfig& config() const { return config_; }

 private:
  MinerConfig config_;
};

}  // namespace desmine::core
