#include "core/anomaly.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace desmine::core {

AnomalyDetector::AnomalyDetector(const MvrGraph& graph, DetectorConfig config)
    : config_(config) {
  DESMINE_EXPECTS(config.valid_lo <= config.valid_hi, "valid band order");
  for (const MvrEdge& e : graph.edges()) {
    if (e.bleu >= config_.valid_lo && e.bleu < config_.valid_hi) {
      DESMINE_EXPECTS(e.model != nullptr,
                      "valid edge lacks a trained model");
      valid_edges_.push_back(e);
    }
  }
}

DetectionResult AnomalyDetector::detect(
    const std::vector<text::Corpus>& test_sentences) const {
  DESMINE_EXPECTS(!test_sentences.empty(), "no test sentences");
  const std::size_t windows = test_sentences.front().size();
  for (const text::Corpus& corpus : test_sentences) {
    DESMINE_EXPECTS(corpus.size() == windows,
                    "test corpora must be aligned across sensors");
  }

  const obs::ScopedTimer detect_timer(
      "detect", {obs::kv("windows", windows),
                 obs::kv("valid_edges", valid_edges_.size())});
  obs::Histogram& edge_ms = obs::metrics().histogram("detector.edge_score_ms");

  DetectionResult result;
  result.valid_edges = valid_edges_;
  for (MvrEdge& e : result.valid_edges) e.model.reset();
  result.edge_bleu.assign(valid_edges_.size(),
                          std::vector<double>(windows, 0.0));
  result.anomaly_scores.assign(windows, 0.0);
  result.broken_edges.assign(windows, {});

  // Each edge owns its model, so edges are independent units of work.
  auto score_edge = [&](std::size_t e) {
    const MvrEdge& edge = valid_edges_[e];
    DESMINE_EXPECTS(edge.src < test_sentences.size() &&
                        edge.dst < test_sentences.size(),
                    "edge endpoint missing from test data");
    const obs::ScopedTimer timer("score-edge", edge_ms);
    const text::Corpus& src = test_sentences[edge.src];
    const text::Corpus& dst = test_sentences[edge.dst];
    for (std::size_t t = 0; t < windows; ++t) {
      const text::Sentence candidate = edge.model->translate(src[t]);
      result.edge_bleu[e][t] =
          text::corpus_bleu({candidate}, {dst[t]}, config_.bleu).score;
    }
  };

  if (config_.threads == 1 || valid_edges_.size() <= 1) {
    for (std::size_t e = 0; e < valid_edges_.size(); ++e) score_edge(e);
  } else {
    util::ThreadPool pool(config_.threads);
    pool.parallel_for(valid_edges_.size(), score_edge);
  }

  const double pt = static_cast<double>(valid_edges_.size());
  for (std::size_t t = 0; t < windows; ++t) {
    std::size_t broken = 0;
    for (std::size_t e = 0; e < valid_edges_.size(); ++e) {
      if (result.edge_bleu[e][t] <
          valid_edges_[e].bleu - config_.tolerance) {
        ++broken;
        result.broken_edges[t].push_back(e);
      }
    }
    result.anomaly_scores[t] = pt == 0.0 ? 0.0 : static_cast<double>(broken) / pt;
  }

  obs::metrics().counter("detector.windows_scored").inc(windows);
  obs::metrics()
      .counter("detector.edge_windows_scored")
      .inc(windows * valid_edges_.size());
  DESMINE_LOG_DEBUG("detection pass complete",
                    {obs::kv("windows", windows),
                     obs::kv("valid_edges", valid_edges_.size()),
                     obs::kv("wall_ms", detect_timer.elapsed_ms())});
  return result;
}

}  // namespace desmine::core
