#include "core/anomaly.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/errors.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace desmine::core {

AnomalyDetector::AnomalyDetector(const MvrGraph& graph, DetectorConfig config)
    : config_(config), names_(graph.sensor_names()) {
  DESMINE_EXPECTS(config.valid_lo <= config.valid_hi, "valid band order");
  DESMINE_EXPECTS(config.min_coverage >= 0.0 && config.min_coverage <= 1.0,
                  "min_coverage must lie in [0, 1]");
  for (const MvrEdge& e : graph.edges()) {
    if (e.bleu >= config_.valid_lo && e.bleu < config_.valid_hi) {
      DESMINE_EXPECTS(e.model != nullptr,
                      "valid edge lacks a trained model");
      valid_edges_.push_back(e);
    }
  }
}

DetectionResult AnomalyDetector::detect(
    const std::vector<text::Corpus>& test_sentences,
    const DetectOptions& options) const {
  const HealthMask* unhealthy = options.unhealthy;
  DESMINE_EXPECTS(!test_sentences.empty(), "no test sentences");
  const std::size_t windows = test_sentences.front().size();
  for (std::size_t k = 0; k < test_sentences.size(); ++k) {
    if (test_sentences[k].size() != windows) {
      throw robust::MisalignedCorpus(
          k < names_.size() ? names_[k]
                            : "sensor[" + std::to_string(k) + "]",
          windows, test_sentences[k].size());
    }
  }
  if (unhealthy != nullptr) {
    DESMINE_EXPECTS(unhealthy->size() == windows,
                    "health mask must hold one entry per window");
  }

  const obs::ScopedTimer detect_timer(
      "detect", {obs::kv("windows", windows),
                 obs::kv("valid_edges", valid_edges_.size())});
  obs::Histogram& edge_ms = obs::metrics().histogram("detector.edge_score_ms");
  obs::Counter& degraded_windows =
      obs::metrics().counter("detect.window.degraded");

  DetectionResult result;
  result.valid_edges = valid_edges_;
  for (MvrEdge& e : result.valid_edges) e.model.reset();
  result.edge_bleu.assign(valid_edges_.size(),
                          std::vector<double>(windows, 0.0));
  result.anomaly_scores.assign(windows, 0.0);
  result.broken_edges.assign(windows, {});
  result.coverage.assign(windows, valid_edges_.empty() ? 0.0 : 1.0);
  result.degraded.assign(windows, 0);

  // Per-window excluded-edge bitmap from the health mask: an edge leaves a
  // window's valid set when either endpoint is unhealthy there.
  std::vector<std::vector<std::uint8_t>> excluded;
  if (unhealthy != nullptr && !valid_edges_.empty()) {
    excluded.assign(windows,
                    std::vector<std::uint8_t>(valid_edges_.size(), 0));
    std::vector<std::uint8_t> bad(names_.size(), 0);
    for (std::size_t t = 0; t < windows; ++t) {
      const std::vector<std::size_t>& nodes = (*unhealthy)[t];
      if (nodes.empty()) continue;
      for (std::size_t n : nodes) {
        DESMINE_EXPECTS(n < names_.size(),
                        "health mask names a sensor outside the graph");
        bad[n] = 1;
      }
      for (std::size_t e = 0; e < valid_edges_.size(); ++e) {
        if (bad[valid_edges_[e].src] || bad[valid_edges_[e].dst]) {
          excluded[t][e] = 1;
        }
      }
      for (std::size_t n : nodes) bad[n] = 0;
    }
  }

  // Each edge owns its model — and therefore its scoring workspace, which
  // translate() rewinds and reuses across this window loop — so edges are
  // independent units of work and the decode path stays allocation-free.
  // Excluded (edge, window) pairs are skipped entirely: an unhealthy
  // sensor's sentences are plumbing artifacts, not data worth scoring.
  auto score_edge = [&](std::size_t e) {
    const MvrEdge& edge = valid_edges_[e];
    DESMINE_EXPECTS(edge.src < test_sentences.size() &&
                        edge.dst < test_sentences.size(),
                    "edge endpoint missing from test data");
    const obs::ScopedTimer timer("score-edge", edge_ms);
    const text::Corpus& src = test_sentences[edge.src];
    const text::Corpus& dst = test_sentences[edge.dst];
    // Scoped precision override: each edge owns its model here, so flipping
    // the decode precision for the window loop races with nothing; the
    // previous mode is restored before the edge is handed back.
    const tensor::Precision prev = edge.model->decode_precision();
    edge.model->set_decode_precision(options.precision);
    for (std::size_t t = 0; t < windows; ++t) {
      if (!excluded.empty() && excluded[t][e]) continue;
      const text::Sentence candidate = edge.model->translate(src[t]);
      result.edge_bleu[e][t] =
          text::sentence_bleu(candidate, dst[t], config_.bleu).score;
    }
    edge.model->set_decode_precision(prev);
  };

  if (config_.threads == 1 || valid_edges_.size() <= 1) {
    for (std::size_t e = 0; e < valid_edges_.size(); ++e) score_edge(e);
  } else {
    util::ThreadPool pool(config_.threads);
    pool.parallel_for(valid_edges_.size(), score_edge);
  }

  const double total = static_cast<double>(valid_edges_.size());
  for (std::size_t t = 0; t < windows; ++t) {
    std::size_t surviving = 0;
    std::size_t broken = 0;
    for (std::size_t e = 0; e < valid_edges_.size(); ++e) {
      if (!excluded.empty() && excluded[t][e]) continue;
      ++surviving;
      if (result.edge_bleu[e][t] <
          valid_edges_[e].bleu - config_.tolerance) {
        ++broken;
        result.broken_edges[t].push_back(e);
      }
    }
    result.coverage[t] =
        total == 0.0 ? 0.0 : static_cast<double>(surviving) / total;
    if (unhealthy != nullptr && result.coverage[t] < config_.min_coverage) {
      // Below quorum: no verdict. The placeholder 0.0 keeps the series
      // NaN-free; `degraded` tells consumers to ignore it. Broken edges of
      // the surviving (genuinely scored) models are kept for diagnosis.
      result.degraded[t] = 1;
      result.anomaly_scores[t] = 0.0;
      degraded_windows.inc();
    } else {
      result.anomaly_scores[t] =
          surviving == 0 ? 0.0
                         : static_cast<double>(broken) /
                               static_cast<double>(surviving);
    }
  }

  obs::metrics().counter("detector.windows_scored").inc(windows);
  obs::metrics()
      .counter("detector.edge_windows_scored")
      .inc(windows * valid_edges_.size());
  DESMINE_LOG_DEBUG("detection pass complete",
                    {obs::kv("windows", windows),
                     obs::kv("valid_edges", valid_edges_.size()),
                     obs::kv("wall_ms", detect_timer.elapsed_ms())});
  return result;
}

}  // namespace desmine::core
