// Domain types for multivariate discrete event sequences (§II-A).
//
// A sensor reports one categorical state per sampling tick; the sampling is
// even, so index position encodes time. The multivariate input {X^k_t} is a
// list of equal-length per-sensor sequences.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace desmine::core {

/// One sensor's evenly sampled categorical states ("ON", "OFF", "status 3").
using EventSequence = std::vector<std::string>;

/// A named sensor with its event sequence.
struct SensorSeries {
  std::string name;
  EventSequence events;
};

/// All sensors of one system; every sequence must have the same length.
using MultivariateSeries = std::vector<SensorSeries>;

/// Slice every sensor's events to [begin, end). Bounds are clamped to the
/// sequence length.
MultivariateSeries slice(const MultivariateSeries& series, std::size_t begin,
                         std::size_t end);

/// Length of the (shared) event sequences; 0 for an empty series. Throws if
/// sensors disagree on length.
std::size_t series_length(const MultivariateSeries& series);

}  // namespace desmine::core
