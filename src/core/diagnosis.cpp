#include "core/diagnosis.h"

#include <algorithm>

#include "util/error.h"

namespace desmine::core {

FaultDiagnoser::FaultDiagnoser(const MvrGraph& structure,
                               DiagnosisConfig config)
    : config_(config) {
  const graph::CommunityResult communities =
      graph::walktrap(structure.to_digraph(), config_.walktrap);
  membership_ = communities.membership;
  cluster_count_ = communities.community_count;
}

WindowDiagnosis FaultDiagnoser::diagnose(const DetectionResult& detection,
                                         std::size_t window) const {
  DESMINE_EXPECTS(window < detection.anomaly_scores.size(),
                  "window out of range");

  WindowDiagnosis out;
  out.window = window;
  out.clusters.assign(cluster_count_, {});
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    for (std::size_t v = 0; v < membership_.size(); ++v) {
      if (membership_[v] == c) out.clusters[c].sensors.push_back(v);
    }
  }

  // Which valid edges broke at this window?
  std::vector<bool> broken(detection.valid_edges.size(), false);
  for (std::size_t e : detection.broken_edges[window]) broken[e] = true;

  std::size_t total = 0, total_broken = 0;
  for (std::size_t e = 0; e < detection.valid_edges.size(); ++e) {
    const MvrEdge& edge = detection.valid_edges[e];
    if (edge.src >= membership_.size() || edge.dst >= membership_.size()) {
      continue;
    }
    // Only intra-cluster edges localize a fault to a component.
    if (membership_[edge.src] != membership_[edge.dst]) continue;
    ClusterDiagnosis& cluster = out.clusters[membership_[edge.src]];
    ++cluster.edges_total;
    ++total;
    if (broken[e]) {
      ++cluster.edges_broken;
      ++total_broken;
    }
  }
  out.overall_broken_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(total_broken) / static_cast<double>(total);

  for (std::size_t c = 0; c < out.clusters.size(); ++c) {
    if (out.clusters[c].edges_total > 0 &&
        out.clusters[c].broken_fraction() > config_.faulty_threshold) {
      out.faulty.push_back(c);
    }
  }
  std::sort(out.faulty.begin(), out.faulty.end(),
            [&](std::size_t a, std::size_t b) {
              return out.clusters[a].broken_fraction() >
                     out.clusters[b].broken_fraction();
            });
  return out;
}

}  // namespace desmine::core
