// Online anomaly detection — Algorithm 2 of the paper.
//
// A pair model g(i,j) is *valid* when its training BLEU s(i,j) lies in a
// user-selected band (the paper finds [80, 90) best, §III-C). At each test
// window t, every valid model translates sensor i's sentence and scores it
// against sensor j's sentence; the relationship is *broken* when the test
// BLEU f(i,j) falls below s(i,j) (minus an optional tolerance). The anomaly
// score a_t is the fraction of valid relationships broken at t, and the
// alert status W_t records which edges broke — the input to fault diagnosis.
//
// Degraded-mode extension (deviation from the paper, see DESIGN.md §8):
// detect() optionally takes a per-window health mask naming unhealthy
// sensors. Edges incident to an unhealthy sensor are *excluded* from that
// window's valid set — not scored, not counted as broken — and a_t is
// renormalized over the surviving edges. Each window reports its coverage
// (surviving / total valid edges); when coverage falls below the
// min_coverage quorum the window is flagged degraded and emits a
// no-verdict score of 0.0 that consumers must gate on the flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mvr_graph.h"
#include "tensor/kernels.h"
#include "text/bleu.h"

namespace desmine::core {

struct DetectorConfig {
  double valid_lo = 80.0;  ///< valid-model band lower BLEU bound (inclusive)
  double valid_hi = 90.0;  ///< upper bound (exclusive)
  double tolerance = 0.0;  ///< broken when f < s - tolerance
  /// Quorum for degraded-mode detection: a window whose surviving-edge
  /// coverage falls below this fraction emits no verdict (degraded flag set,
  /// score forced to 0.0). Only consulted when a health mask is supplied.
  double min_coverage = 0.5;
  text::BleuOptions bleu{};  ///< sentence-BLEU options (smoothing on)
  std::size_t threads = 0;   ///< 0 = hardware concurrency
};

/// Per-window exclusion mask for degraded-mode detection: mask[t] holds the
/// sensor node indices (graph indexing) considered unhealthy at window t.
using HealthMask = std::vector<std::vector<std::size_t>>;

struct DetectionResult {
  /// Anomaly score a_t per test window, in [0, 1]. For a degraded window
  /// (see `degraded`) the score is a placeholder 0.0 — no verdict, not
  /// "no anomaly".
  std::vector<double> anomaly_scores;
  /// W_t: per window, the indices (into valid_edges) of broken edges.
  /// Edges excluded by the health mask are never listed.
  std::vector<std::vector<std::size_t>> broken_edges;
  /// The valid edges used (src, dst, training BLEU; models not retained).
  std::vector<MvrEdge> valid_edges;
  /// f(i,j) per valid edge per window: edge_bleu[e][t]. Stays 0.0 for
  /// (edge, window) pairs excluded by the health mask (never scored).
  std::vector<std::vector<double>> edge_bleu;
  /// Surviving valid edges / total valid edges per window (1.0 when no
  /// health mask excluded anything; 0.0 when there are no valid edges).
  std::vector<double> coverage;
  /// 1 when the window's coverage fell below DetectorConfig::min_coverage
  /// (degraded-mode runs only; always 0 without a health mask).
  std::vector<std::uint8_t> degraded;
};

/// Per-call options for AnomalyDetector::detect. A struct rather than bare
/// defaulted pointer arguments so call sites stay readable and future knobs
/// don't multiply overloads.
struct DetectOptions {
  /// Per-window exclusion mask for degraded-mode detection; must hold one
  /// entry per window when set. Null = strict scoring (no exclusions, the
  /// degraded quorum never fires). The pointed-to mask must outlive the
  /// detect() call.
  const HealthMask* unhealthy = nullptr;
  /// Numeric mode of the per-edge greedy decodes: kF32 (default) or the
  /// int8 quantized-weight path (DESIGN.md §16). Each edge model's previous
  /// decode precision is restored when the call returns.
  tensor::Precision precision = tensor::Precision::kF32;
};

class AnomalyDetector {
 public:
  /// `graph` must carry trained models on its edges.
  AnomalyDetector(const MvrGraph& graph, DetectorConfig config);

  /// `test_sentences[k]` is the aligned test corpus of sensor node k (same
  /// node indexing as the graph; all corpora equal length — a ragged input
  /// raises robust::MisalignedCorpus naming the offending sensor). Strict
  /// scoring; see the DetectOptions overload for degraded mode.
  DetectionResult detect(const std::vector<text::Corpus>& test_sentences) const {
    return detect(test_sentences, DetectOptions{});
  }

  /// As above, honouring `options`: with DetectOptions::unhealthy set, edges
  /// incident to a listed sensor are excluded from that window and a_t is
  /// renormalized over the survivors (see DetectionResult::coverage).
  DetectionResult detect(const std::vector<text::Corpus>& test_sentences,
                         const DetectOptions& options) const;

  /// Deprecated shim for the pre-DetectOptions signature. Callers passing a
  /// raw mask pointer should move to detect(corpora, DetectOptions{...}).
  [[deprecated("use detect(test_sentences, DetectOptions{.unhealthy = mask})")]]
  DetectionResult detect(const std::vector<text::Corpus>& test_sentences,
                         const HealthMask* unhealthy) const {
    DetectOptions options;
    options.unhealthy = unhealthy;
    return detect(test_sentences, options);
  }

  std::size_t valid_model_count() const { return valid_edges_.size(); }
  const std::vector<MvrEdge>& valid_edges() const { return valid_edges_; }

 private:
  DetectorConfig config_;
  std::vector<MvrEdge> valid_edges_;  ///< edges within the valid band
  std::vector<std::string> names_;    ///< sensor names, graph node indexing
};

}  // namespace desmine::core
