// Online anomaly detection — Algorithm 2 of the paper.
//
// A pair model g(i,j) is *valid* when its training BLEU s(i,j) lies in a
// user-selected band (the paper finds [80, 90) best, §III-C). At each test
// window t, every valid model translates sensor i's sentence and scores it
// against sensor j's sentence; the relationship is *broken* when the test
// BLEU f(i,j) falls below s(i,j) (minus an optional tolerance). The anomaly
// score a_t is the fraction of valid relationships broken at t, and the
// alert status W_t records which edges broke — the input to fault diagnosis.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mvr_graph.h"
#include "text/bleu.h"

namespace desmine::core {

struct DetectorConfig {
  double valid_lo = 80.0;  ///< valid-model band lower BLEU bound (inclusive)
  double valid_hi = 90.0;  ///< upper bound (exclusive)
  double tolerance = 0.0;  ///< broken when f < s - tolerance
  text::BleuOptions bleu{};  ///< sentence-BLEU options (smoothing on)
  std::size_t threads = 0;   ///< 0 = hardware concurrency
};

struct DetectionResult {
  /// Anomaly score a_t per test window, in [0, 1].
  std::vector<double> anomaly_scores;
  /// W_t: per window, the indices (into valid_edges) of broken edges.
  std::vector<std::vector<std::size_t>> broken_edges;
  /// The valid edges used (src, dst, training BLEU; models not retained).
  std::vector<MvrEdge> valid_edges;
  /// f(i,j) per valid edge per window: edge_bleu[e][t].
  std::vector<std::vector<double>> edge_bleu;
};

class AnomalyDetector {
 public:
  /// `graph` must carry trained models on its edges.
  AnomalyDetector(const MvrGraph& graph, DetectorConfig config);

  /// `test_sentences[k]` is the aligned test corpus of sensor node k (same
  /// node indexing as the graph; all corpora equal length). Returns scores
  /// for every window.
  DetectionResult detect(const std::vector<text::Corpus>& test_sentences) const;

  std::size_t valid_model_count() const { return valid_edges_.size(); }
  const std::vector<MvrEdge>& valid_edges() const { return valid_edges_; }

 private:
  DetectorConfig config_;
  std::vector<MvrEdge> valid_edges_;  ///< edges within the valid band
};

}  // namespace desmine::core
