// Fault diagnosis (§III-C "Interpretation of anomaly detection results").
//
// Given the alert status W_t from the detector and a local subgraph, the
// diagnoser traces broken relationships back to clusters of sensors: a
// cluster whose internal edges are mostly broken is a faulty component, and
// the fraction of broken edges measures anomaly severity (Fig. 9).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/mvr_graph.h"
#include "graph/walktrap.h"

namespace desmine::core {

struct ClusterDiagnosis {
  std::vector<std::size_t> sensors;   ///< member node ids
  std::size_t edges_total = 0;        ///< valid edges inside the cluster
  std::size_t edges_broken = 0;       ///< broken at the inspected window
  double broken_fraction() const {
    return edges_total == 0
               ? 0.0
               : static_cast<double>(edges_broken) /
                     static_cast<double>(edges_total);
  }
};

struct WindowDiagnosis {
  std::size_t window = 0;
  std::vector<ClusterDiagnosis> clusters;
  /// Clusters whose broken fraction exceeds the faulty threshold, sorted
  /// most-broken first. Indices into `clusters`.
  std::vector<std::size_t> faulty;
  double overall_broken_fraction = 0.0;
};

struct DiagnosisConfig {
  double faulty_threshold = 0.5;  ///< cluster is faulty when > this broken
  graph::WalktrapOptions walktrap{};
};

class FaultDiagnoser {
 public:
  /// Clusters are computed once from `structure` (typically a local
  /// subgraph: valid band, popular sensors removed).
  FaultDiagnoser(const MvrGraph& structure, DiagnosisConfig config = {});

  /// Diagnose one test window from a detection result (which must come from
  /// a detector sharing the same node indexing).
  WindowDiagnosis diagnose(const DetectionResult& detection,
                           std::size_t window) const;

  const std::vector<std::size_t>& membership() const { return membership_; }
  std::size_t cluster_count() const { return cluster_count_; }

 private:
  DiagnosisConfig config_;
  std::vector<std::size_t> membership_;
  std::size_t cluster_count_ = 0;
};

}  // namespace desmine::core
