#include "core/encryption.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace desmine::core {

SensorEncrypter SensorEncrypter::fit(const MultivariateSeries& train) {
  SensorEncrypter enc;
  for (const SensorSeries& sensor : train) {
    std::set<std::string> states(sensor.events.begin(), sensor.events.end());
    if (states.size() < 2) {
      // Sequence filtering: constant (or empty) sequences are meaningless to
      // the translation model.
      enc.dropped_.push_back(sensor.name);
      continue;
    }
    // std::set iterates in sorted (alphanumeric) order, which fixes the
    // letter assignment deterministically.
    DESMINE_EXPECTS(states.size() <= 26,
                    "sensor cardinality exceeds the letter alphabet");
    Encoding encoding;
    encoding.sensor = sensor.name;
    char letter = 'a';
    for (const std::string& state : states) {
      encoding.to_char.emplace(state, letter++);
    }
    enc.encodings_.emplace(sensor.name, std::move(encoding));
    enc.kept_.push_back(sensor.name);
  }
  return enc;
}

SensorEncrypter SensorEncrypter::from_encodings(
    std::vector<Encoding> encodings, std::vector<std::string> dropped) {
  SensorEncrypter enc;
  for (Encoding& e : encodings) {
    DESMINE_EXPECTS(!e.to_char.empty(), "empty encoding table");
    enc.kept_.push_back(e.sensor);
    std::string name = e.sensor;
    enc.encodings_.emplace(std::move(name), std::move(e));
  }
  enc.dropped_ = std::move(dropped);
  return enc;
}

const SensorEncrypter::Encoding& SensorEncrypter::encoding(
    const std::string& sensor) const {
  const auto it = encodings_.find(sensor);
  DESMINE_EXPECTS(it != encodings_.end(), "unknown or dropped sensor");
  return it->second;
}

bool SensorEncrypter::keeps(const std::string& sensor) const {
  return encodings_.count(sensor) > 0;
}

std::size_t SensorEncrypter::cardinality(const std::string& sensor) const {
  const auto it = encodings_.find(sensor);
  DESMINE_EXPECTS(it != encodings_.end(), "unknown or dropped sensor");
  return it->second.to_char.size();
}

std::string SensorEncrypter::encode(const std::string& sensor,
                                    const EventSequence& events) const {
  const auto it = encodings_.find(sensor);
  DESMINE_EXPECTS(it != encodings_.end(), "unknown or dropped sensor");
  std::string out;
  out.reserve(events.size());
  for (const std::string& state : events) {
    const auto sit = it->second.to_char.find(state);
    out.push_back(sit == it->second.to_char.end() ? kUnknownChar
                                                  : sit->second);
  }
  return out;
}

std::string SensorEncrypter::token(const std::string& sensor,
                                   const std::string& state) const {
  const auto it = encodings_.find(sensor);
  DESMINE_EXPECTS(it != encodings_.end(), "unknown or dropped sensor");
  const auto sit = it->second.to_char.find(state);
  const char c =
      sit == it->second.to_char.end() ? kUnknownChar : sit->second;
  return sensor + "." + std::string(1, c);
}

std::vector<std::string> SensorEncrypter::encode_all(
    const MultivariateSeries& series) const {
  std::vector<std::string> out;
  out.reserve(kept_.size());
  for (const std::string& name : kept_) {
    const auto it =
        std::find_if(series.begin(), series.end(),
                     [&](const SensorSeries& s) { return s.name == name; });
    DESMINE_EXPECTS(it != series.end(), "series missing kept sensor " + name);
    out.push_back(encode(name, it->events));
  }
  return out;
}

}  // namespace desmine::core
