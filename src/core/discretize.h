// Feature discretization for continuous time series (§IV-C).
//
// Two schemes from the paper's Backblaze adaptation:
//  * Binary — for zero-inflated features (error counts): the category is
//    whether the value is zero (Fig. 10a).
//  * Quantile — otherwise: the 20th/40th/60th/80th percentiles of the
//    training distribution split values into five categories (Fig. 10b).
// choose_scheme() applies the paper's rule ("if most of the observations of
// a feature are equal to zero ... binary").
#pragma once

#include <string>
#include <vector>

#include "core/event.h"

namespace desmine::core {

enum class DiscretizationScheme { kBinary, kQuantile };

class Discretizer {
 public:
  /// Pick the scheme for a training sample: binary when the zero fraction
  /// exceeds `zero_fraction_threshold`.
  static DiscretizationScheme choose_scheme(
      const std::vector<double>& train_values,
      double zero_fraction_threshold = 0.5);

  /// Fit the chosen scheme's boundaries on the training sample.
  static Discretizer fit(const std::vector<double>& train_values,
                         DiscretizationScheme scheme);

  /// Convenience: choose_scheme + fit.
  static Discretizer fit_auto(const std::vector<double>& train_values,
                              double zero_fraction_threshold = 0.5);

  DiscretizationScheme scheme() const { return scheme_; }

  /// Percentile boundaries (empty for the binary scheme).
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Category label: "zero"/"nonzero" for binary; "q0".."q4" for quantile.
  std::string discretize(double value) const;

  /// Discretize a whole series into a categorical event sequence.
  EventSequence apply(const std::vector<double>& values) const;

 private:
  DiscretizationScheme scheme_ = DiscretizationScheme::kBinary;
  std::vector<double> boundaries_;
};

/// First-order difference: out[t] = x[t] - x[t-1]; out[0] = 0. Used to turn
/// cumulative SMART counters into daily deltas (§IV-B).
std::vector<double> first_difference(const std::vector<double>& values);

}  // namespace desmine::core
