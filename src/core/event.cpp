#include "core/event.h"

#include <algorithm>

#include "util/error.h"

namespace desmine::core {

MultivariateSeries slice(const MultivariateSeries& series, std::size_t begin,
                         std::size_t end) {
  MultivariateSeries out;
  out.reserve(series.size());
  for (const SensorSeries& sensor : series) {
    const std::size_t b = std::min(begin, sensor.events.size());
    const std::size_t e = std::min(end, sensor.events.size());
    SensorSeries s;
    s.name = sensor.name;
    s.events.assign(sensor.events.begin() + static_cast<long>(b),
                    sensor.events.begin() + static_cast<long>(std::max(b, e)));
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t series_length(const MultivariateSeries& series) {
  if (series.empty()) return 0;
  const std::size_t len = series.front().events.size();
  for (const SensorSeries& sensor : series) {
    DESMINE_EXPECTS(sensor.events.size() == len,
                    "sensors must share one sequence length");
  }
  return len;
}

}  // namespace desmine::core
