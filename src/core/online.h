// Streaming (online) anomaly detection.
//
// The batch AnomalyDetector (Algorithm 2) scores a whole test corpus at
// once; a deployed system instead receives one multivariate sample per tick.
// OnlineDetector layers a WindowAssembler (per-sensor buffering + window
// slicing + strict/degraded health semantics, see window_assembler.h) over
// an AnomalyDetector: whenever the stream completes the next detection
// window (one sentence per sensor, §II-A2), it scores that window
// immediately and emits its anomaly score and alert set. Detection latency
// therefore equals the sentence stride — exactly the granularity trade-off
// the paper discusses. For many concurrent streams sharing one model set,
// use serve::SessionManager instead, which defers scoring to a cross-session
// batch scheduler with identical semantics.
//
// Two ingestion contracts (DESIGN.md §8):
//  * strict (default) — a kept sensor missing from a tick raises a typed
//    robust::MissingSensor; scores are bit-identical to the pre-degraded
//    implementation.
//  * degraded (DegradedConfig::enabled) — missing samples feed the
//    robust::SensorHealthTracker instead of throwing; windows touched by a
//    missing tick or an unhealthy sensor exclude that sensor's edges, a_t
//    renormalizes over the survivors, and windows below the min_coverage
//    quorum emit a no-verdict result (degraded flag) instead of a fake 0.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/event.h"
#include "core/language.h"
#include "core/mvr_graph.h"
#include "core/window_assembler.h"
#include "robust/sensor_health.h"

namespace desmine::core {

class OnlineDetector {
 public:
  /// One completed detection window.
  struct WindowResult {
    std::size_t window_index = 0;  ///< 0-based, in sentence-stride units
    std::size_t end_tick = 0;      ///< tick just past the window's last char
    double anomaly_score = 0.0;
    /// Broken (src, dst) sensor-node pairs at this window.
    std::vector<std::pair<std::size_t, std::size_t>> broken;
    /// Surviving valid edges / total valid edges (1.0 in strict mode).
    double coverage = 1.0;
    /// True when coverage fell below the min_coverage quorum; the
    /// anomaly_score is then a no-verdict placeholder 0.0.
    bool degraded = false;
    /// Node indices whose edges were excluded from this window (degraded
    /// mode only; empty in strict mode).
    std::vector<std::size_t> unhealthy;
    /// (src, dst) edges whose score could not be computed — decode failure
    /// or open circuit breaker. Serving layer only (serve::SessionManager);
    /// always empty from OnlineDetector.
    std::vector<std::pair<std::size_t, std::size_t>> failed;
    /// True when the serving layer shed this window under overload instead
    /// of scoring it late; the anomaly_score is then a no-verdict
    /// placeholder 0.0. Always false from OnlineDetector.
    bool shed = false;
  };

  /// `graph` must carry trained models; `encrypter` must be the one the
  /// graph was mined with (same kept-sensor order).
  OnlineDetector(const MvrGraph& graph, SensorEncrypter encrypter,
                 WindowConfig window, DetectorConfig detector,
                 DegradedConfig degraded = {});

  /// Feed one tick: the categorical state of every kept sensor, keyed by
  /// sensor name (unknown states map to <unk>). In strict mode a missing
  /// kept sensor throws robust::MissingSensor; in degraded mode it is
  /// recorded with the health tracker and the tick proceeds. Returns a
  /// result whenever this tick completed a detection window.
  std::optional<WindowResult> push(
      const std::map<std::string, std::string>& states);

  /// Ticks consumed so far.
  std::size_t ticks() const { return assembler_.ticks(); }
  /// Windows emitted so far.
  std::size_t windows_emitted() const { return assembler_.windows_emitted(); }
  std::size_t valid_model_count() const { return detector_.valid_model_count(); }
  /// Health states (degraded mode; all-healthy in strict mode).
  const robust::SensorHealthTracker& health() const {
    return assembler_.health();
  }

 private:
  WindowAssembler assembler_;
  AnomalyDetector detector_;
};

/// Batch counterpart of the online health tracking: replay `series` through
/// a SensorHealthTracker tick by tick and derive the per-window exclusion
/// mask for AnomalyDetector::detect (a sensor is excluded from a window
/// when any tick the window covers was missing or left the sensor
/// unhealthy). `missing_ticks` lists tick indices where *no* sensor
/// delivered a value — e.g. CSV rows quarantined at ingestion.
HealthMask window_health_mask(const SensorEncrypter& encrypter,
                              const WindowConfig& window,
                              const MultivariateSeries& series,
                              const robust::HealthConfig& health,
                              const std::vector<std::size_t>& missing_ticks = {});

}  // namespace desmine::core
