// Streaming (online) anomaly detection.
//
// The batch AnomalyDetector (Algorithm 2) scores a whole test corpus at
// once; a deployed system instead receives one multivariate sample per tick.
// OnlineDetector buffers encrypted characters per sensor and, whenever the
// stream has advanced far enough to complete the next detection window (one
// sentence per sensor, §II-A2), scores that window and emits its anomaly
// score and alert set. Detection latency therefore equals the sentence
// stride — exactly the granularity trade-off the paper discusses.
//
// Two ingestion contracts (DESIGN.md §8):
//  * strict (default) — a kept sensor missing from a tick raises a typed
//    robust::MissingSensor; scores are bit-identical to the pre-degraded
//    implementation.
//  * degraded (DegradedConfig::enabled) — missing samples feed the
//    robust::SensorHealthTracker instead of throwing; windows touched by a
//    missing tick or an unhealthy sensor exclude that sensor's edges, a_t
//    renormalizes over the survivors, and windows below the min_coverage
//    quorum emit a no-verdict result (degraded flag) instead of a fake 0.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/event.h"
#include "core/language.h"
#include "core/mvr_graph.h"
#include "robust/sensor_health.h"

namespace desmine::core {

/// Degraded-mode ingestion policy for OnlineDetector.
struct DegradedConfig {
  bool enabled = false;  ///< false = strict: missing sensors throw
  robust::HealthConfig health{};
};

class OnlineDetector {
 public:
  /// One completed detection window.
  struct WindowResult {
    std::size_t window_index = 0;  ///< 0-based, in sentence-stride units
    std::size_t end_tick = 0;      ///< tick just past the window's last char
    double anomaly_score = 0.0;
    /// Broken (src, dst) sensor-node pairs at this window.
    std::vector<std::pair<std::size_t, std::size_t>> broken;
    /// Surviving valid edges / total valid edges (1.0 in strict mode).
    double coverage = 1.0;
    /// True when coverage fell below the min_coverage quorum; the
    /// anomaly_score is then a no-verdict placeholder 0.0.
    bool degraded = false;
    /// Node indices whose edges were excluded from this window (degraded
    /// mode only; empty in strict mode).
    std::vector<std::size_t> unhealthy;
  };

  /// `graph` must carry trained models; `encrypter` must be the one the
  /// graph was mined with (same kept-sensor order).
  OnlineDetector(const MvrGraph& graph, SensorEncrypter encrypter,
                 WindowConfig window, DetectorConfig detector,
                 DegradedConfig degraded = {});

  /// Feed one tick: the categorical state of every kept sensor, keyed by
  /// sensor name (unknown states map to <unk>). In strict mode a missing
  /// kept sensor throws robust::MissingSensor; in degraded mode it is
  /// recorded with the health tracker and the tick proceeds. Returns a
  /// result whenever this tick completed a detection window.
  std::optional<WindowResult> push(
      const std::map<std::string, std::string>& states);

  /// Ticks consumed so far.
  std::size_t ticks() const { return ticks_; }
  /// Windows emitted so far.
  std::size_t windows_emitted() const { return next_window_; }
  std::size_t valid_model_count() const { return detector_.valid_model_count(); }
  /// Health states (degraded mode; all-healthy in strict mode).
  const robust::SensorHealthTracker& health() const { return health_; }

 private:
  /// First stream position (char index) of window w and its char span.
  std::size_t window_start(std::size_t w) const;
  std::size_t window_span() const;

  SensorEncrypter encrypter_;
  LanguageGenerator language_;
  AnomalyDetector detector_;
  DegradedConfig degraded_;
  robust::SensorHealthTracker health_;
  std::vector<std::string> buffers_;  ///< encrypted chars per kept sensor
  /// Per kept sensor, one flag per buffered tick: 1 when the tick must not
  /// contribute to a verdict (missing sample, or sensor unhealthy after
  /// observing it). Trimmed in lockstep with buffers_.
  std::vector<std::vector<std::uint8_t>> taints_;
  std::size_t ticks_ = 0;
  std::size_t next_window_ = 0;
  std::size_t trimmed_ = 0;  ///< chars dropped from the buffer fronts
};

/// Batch counterpart of the online health tracking: replay `series` through
/// a SensorHealthTracker tick by tick and derive the per-window exclusion
/// mask for AnomalyDetector::detect (a sensor is excluded from a window
/// when any tick the window covers was missing or left the sensor
/// unhealthy). `missing_ticks` lists tick indices where *no* sensor
/// delivered a value — e.g. CSV rows quarantined at ingestion.
HealthMask window_health_mask(const SensorEncrypter& encrypter,
                              const WindowConfig& window,
                              const MultivariateSeries& series,
                              const robust::HealthConfig& health,
                              const std::vector<std::size_t>& missing_ticks = {});

}  // namespace desmine::core
