// Streaming (online) anomaly detection.
//
// The batch AnomalyDetector (Algorithm 2) scores a whole test corpus at
// once; a deployed system instead receives one multivariate sample per tick.
// OnlineDetector buffers encrypted characters per sensor and, whenever the
// stream has advanced far enough to complete the next detection window (one
// sentence per sensor, §II-A2), scores that window and emits its anomaly
// score and alert set. Detection latency therefore equals the sentence
// stride — exactly the granularity trade-off the paper discusses.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/encryption.h"
#include "core/language.h"
#include "core/mvr_graph.h"

namespace desmine::core {

class OnlineDetector {
 public:
  /// One completed detection window.
  struct WindowResult {
    std::size_t window_index = 0;  ///< 0-based, in sentence-stride units
    std::size_t end_tick = 0;      ///< tick just past the window's last char
    double anomaly_score = 0.0;
    /// Broken (src, dst) sensor-node pairs at this window.
    std::vector<std::pair<std::size_t, std::size_t>> broken;
  };

  /// `graph` must carry trained models; `encrypter` must be the one the
  /// graph was mined with (same kept-sensor order).
  OnlineDetector(const MvrGraph& graph, SensorEncrypter encrypter,
                 WindowConfig window, DetectorConfig detector);

  /// Feed one tick: the categorical state of every kept sensor, keyed by
  /// sensor name (missing kept sensors throw; unknown states map to <unk>).
  /// Returns a result whenever this tick completed a detection window.
  std::optional<WindowResult> push(
      const std::map<std::string, std::string>& states);

  /// Ticks consumed so far.
  std::size_t ticks() const { return ticks_; }
  /// Windows emitted so far.
  std::size_t windows_emitted() const { return next_window_; }
  std::size_t valid_model_count() const { return detector_.valid_model_count(); }

 private:
  /// First stream position (char index) of window w and its char span.
  std::size_t window_start(std::size_t w) const;
  std::size_t window_span() const;

  SensorEncrypter encrypter_;
  LanguageGenerator language_;
  AnomalyDetector detector_;
  std::vector<std::string> buffers_;  ///< encrypted chars per kept sensor
  std::size_t ticks_ = 0;
  std::size_t next_window_ = 0;
  std::size_t trimmed_ = 0;  ///< chars dropped from the buffer fronts
};

}  // namespace desmine::core
