#include "core/discretize.h"

#include <algorithm>

#include "util/error.h"
#include "util/stats.h"

namespace desmine::core {

DiscretizationScheme Discretizer::choose_scheme(
    const std::vector<double>& train_values, double zero_fraction_threshold) {
  DESMINE_EXPECTS(!train_values.empty(), "cannot choose scheme on no data");
  std::size_t zeros = 0;
  for (double v : train_values) zeros += (v == 0.0) ? 1 : 0;
  const double zero_fraction =
      static_cast<double>(zeros) / static_cast<double>(train_values.size());
  return zero_fraction > zero_fraction_threshold
             ? DiscretizationScheme::kBinary
             : DiscretizationScheme::kQuantile;
}

Discretizer Discretizer::fit(const std::vector<double>& train_values,
                             DiscretizationScheme scheme) {
  DESMINE_EXPECTS(!train_values.empty(), "cannot fit on no data");
  Discretizer d;
  d.scheme_ = scheme;
  if (scheme == DiscretizationScheme::kQuantile) {
    for (double p : {20.0, 40.0, 60.0, 80.0}) {
      d.boundaries_.push_back(util::percentile(train_values, p));
    }
  }
  return d;
}

Discretizer Discretizer::fit_auto(const std::vector<double>& train_values,
                                  double zero_fraction_threshold) {
  return fit(train_values,
             choose_scheme(train_values, zero_fraction_threshold));
}

std::string Discretizer::discretize(double value) const {
  if (scheme_ == DiscretizationScheme::kBinary) {
    return value == 0.0 ? "zero" : "nonzero";
  }
  std::size_t bucket = 0;
  // Boundaries may repeat when the training distribution is lumpy; strict
  // comparison keeps the mapping monotone regardless.
  while (bucket < boundaries_.size() && value > boundaries_[bucket]) ++bucket;
  return "q" + std::to_string(bucket);
}

EventSequence Discretizer::apply(const std::vector<double>& values) const {
  EventSequence out;
  out.reserve(values.size());
  for (double v : values) out.push_back(discretize(v));
  return out;
}

std::vector<double> first_difference(const std::vector<double>& values) {
  std::vector<double> out(values.size(), 0.0);
  for (std::size_t t = 1; t < values.size(); ++t) {
    out[t] = values[t] - values[t - 1];
  }
  return out;
}

}  // namespace desmine::core
