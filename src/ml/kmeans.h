// K-Means clustering — the classic unsupervised baseline the paper's
// introduction cites ([10], [43]) for anomaly detection on continuous
// features: fit centroids on normal data, flag points far from every
// centroid as outliers.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"  // FeatureMatrix
#include "util/rng.h"

namespace desmine::ml {

struct KMeansConfig {
  std::size_t k = 8;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when centroid movement falls below
  std::uint64_t seed = 19;
};

class KMeans {
 public:
  /// Fit with k-means++ initialization. Requires rows.size() >= k.
  void fit(const FeatureMatrix& rows, const KMeansConfig& config);

  /// Index of the nearest centroid.
  std::size_t assign(const std::vector<double>& row) const;

  /// Euclidean distance to the nearest centroid (the anomaly score).
  double distance(const std::vector<double>& row) const;

  /// 1 = anomaly: distance exceeds the calibrated threshold (set by
  /// calibrate_threshold, default +inf until calibrated).
  int predict_anomaly(const std::vector<double>& row) const;

  /// Set the anomaly threshold to the given percentile of training-point
  /// distances (e.g. 99 -> flag the farthest 1%).
  void calibrate_threshold(const FeatureMatrix& rows, double percentile);

  const FeatureMatrix& centroids() const { return centroids_; }
  double threshold() const { return threshold_; }
  std::size_t iterations_run() const { return iterations_; }

  /// Sum of squared distances of rows to their assigned centroids.
  double inertia(const FeatureMatrix& rows) const;

 private:
  FeatureMatrix centroids_;
  double threshold_ = 0.0;
  bool calibrated_ = false;
  std::size_t iterations_ = 0;
};

}  // namespace desmine::ml
