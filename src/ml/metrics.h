// Binary-classification metrics for the baseline comparison (Table II).
#pragma once

#include <cstddef>
#include <vector>

namespace desmine::ml {

struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  double recall() const;     ///< tp / (tp + fn)
  double precision() const;  ///< tp / (tp + fp)
  double f1() const;
  double accuracy() const;
};

/// Tally a confusion matrix from {0,1} labels and predictions.
Confusion confusion(const std::vector<int>& labels,
                    const std::vector<int>& predictions);

}  // namespace desmine::ml
