#include "ml/metrics.h"

#include "util/error.h"

namespace desmine::ml {

double Confusion::recall() const {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::precision() const {
  const std::size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::accuracy() const {
  const std::size_t total = tp + fp + tn + fn;
  return total == 0 ? 0.0
                    : static_cast<double>(tp + tn) / static_cast<double>(total);
}

Confusion confusion(const std::vector<int>& labels,
                    const std::vector<int>& predictions) {
  DESMINE_EXPECTS(labels.size() == predictions.size(),
                  "labels/predictions must align");
  Confusion c;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      predictions[i] == 1 ? ++c.tp : ++c.fn;
    } else {
      predictions[i] == 1 ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

}  // namespace desmine::ml
