// One-class SVM baseline (Schölkopf et al.; §IV-B) with an RBF kernel.
//
// Solves the ν-one-class dual
//    min  1/2 Σ_ij α_i α_j K(x_i, x_j)
//    s.t. 0 <= α_i <= 1/(ν l),  Σ α_i = 1
// by pairwise (SMO-style) coordinate transfers that preserve the simplex
// constraint. The decision function f(x) = Σ α_i K(x_i, x) − ρ is >= 0 for
// inliers; ρ is recovered from margin support vectors. Features are
// standardized internally (the RBF kernel is scale-sensitive).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/decision_tree.h"  // FeatureMatrix

namespace desmine::ml {

struct OcSvmConfig {
  double nu = 0.1;      ///< upper bound on the outlier fraction
  double gamma = 0.0;   ///< RBF width; 0 = 1/(F * var) ("scale" heuristic)
  std::size_t max_iterations = 20000;
  double tolerance = 1e-6;
};

class OneClassSvm {
 public:
  /// Fit on non-anomalous training rows.
  void fit(const FeatureMatrix& rows, const OcSvmConfig& config);

  /// Signed decision value; >= 0 means inlier.
  double decision(const std::vector<double>& row) const;

  /// 1 = anomaly (outlier), 0 = normal.
  int predict_anomaly(const std::vector<double>& row) const;

  std::size_t support_vector_count() const;
  double rho() const { return rho_; }
  double gamma() const { return gamma_; }

 private:
  std::vector<double> standardize(const std::vector<double>& row) const;
  double kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  FeatureMatrix support_;         ///< standardized training rows
  std::vector<double> alpha_;
  std::vector<double> mean_;
  std::vector<double> scale_;
  double gamma_ = 1.0;
  double rho_ = 0.0;
};

}  // namespace desmine::ml
