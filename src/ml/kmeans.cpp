#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/stats.h"

namespace desmine::ml {

namespace {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double ss = 0.0;
  for (std::size_t f = 0; f < a.size(); ++f) {
    const double d = a[f] - b[f];
    ss += d * d;
  }
  return ss;
}

}  // namespace

void KMeans::fit(const FeatureMatrix& rows, const KMeansConfig& config) {
  DESMINE_EXPECTS(!rows.empty(), "k-means needs data");
  DESMINE_EXPECTS(config.k >= 1 && config.k <= rows.size(),
                  "k must be in [1, n]");
  util::Rng rng(config.seed);

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest chosen centroid.
  centroids_.clear();
  centroids_.push_back(rows[rng.index(rows.size())]);
  std::vector<double> dist2(rows.size(),
                            std::numeric_limits<double>::infinity());
  while (centroids_.size() < config.k) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      dist2[i] =
          std::min(dist2[i], squared_distance(rows[i], centroids_.back()));
    }
    double total = 0.0;
    for (double d : dist2) total += d;
    if (total == 0.0) {
      // All points coincide with centroids; duplicate one.
      centroids_.push_back(rows[rng.index(rows.size())]);
      continue;
    }
    centroids_.push_back(rows[rng.categorical(dist2)]);
  }

  // Lloyd iterations.
  const std::size_t dim = rows.front().size();
  std::vector<std::size_t> assignment(rows.size(), 0);
  for (iterations_ = 0; iterations_ < config.max_iterations; ++iterations_) {
    // Assign.
    for (std::size_t i = 0; i < rows.size(); ++i) {
      assignment[i] = assign(rows[i]);
    }
    // Update.
    FeatureMatrix next(config.k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(config.k, 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ++counts[assignment[i]];
      for (std::size_t f = 0; f < dim; ++f) {
        next[assignment[i]][f] += rows[i][f];
      }
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed at the farthest point.
        std::size_t far = 0;
        double best = -1.0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          const double d = squared_distance(rows[i], centroids_[assign(rows[i])]);
          if (d > best) {
            best = d;
            far = i;
          }
        }
        next[c] = rows[far];
      } else {
        for (std::size_t f = 0; f < dim; ++f) {
          next[c][f] /= static_cast<double>(counts[c]);
        }
      }
      movement += squared_distance(next[c], centroids_[c]);
    }
    centroids_ = std::move(next);
    if (movement < config.tolerance) {
      ++iterations_;
      break;
    }
  }
  calibrated_ = false;
  threshold_ = std::numeric_limits<double>::infinity();
}

std::size_t KMeans::assign(const std::vector<double>& row) const {
  DESMINE_EXPECTS(!centroids_.empty(), "k-means not fitted");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = squared_distance(row, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double KMeans::distance(const std::vector<double>& row) const {
  return std::sqrt(squared_distance(row, centroids_[assign(row)]));
}

int KMeans::predict_anomaly(const std::vector<double>& row) const {
  DESMINE_EXPECTS(calibrated_, "calibrate_threshold() must run first");
  return distance(row) > threshold_ ? 1 : 0;
}

void KMeans::calibrate_threshold(const FeatureMatrix& rows,
                                 double percentile) {
  std::vector<double> distances;
  distances.reserve(rows.size());
  for (const auto& row : rows) distances.push_back(distance(row));
  threshold_ = util::percentile(distances, percentile);
  calibrated_ = true;
}

double KMeans::inertia(const FeatureMatrix& rows) const {
  double total = 0.0;
  for (const auto& row : rows) {
    const double d = distance(row);
    total += d * d;
  }
  return total;
}

}  // namespace desmine::ml
