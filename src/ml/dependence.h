// Classical dependence measures for categorical sequences.
//
// The paper's related-work section (§V) surveys correlation-style dependence
// measures (Spearman, Kendall, kernel measures) and argues they do not apply
// cleanly to categorical data. These estimators are the fair classical
// yardstick that *does* apply — normalized mutual information and Cramér's V
// over the joint state distribution of two aligned discrete sequences — and
// the bench harness compares the graph they induce against the NMT/BLEU
// graph (bench_ablation_dependence).
//
// Both measures are symmetric and instantaneous: unlike the NMT relationship
// they see neither ordering within a window nor lagged structure, which is
// exactly the gap the translation approach fills.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/event.h"

namespace desmine::ml {

/// Joint contingency table of two aligned categorical sequences.
class ContingencyTable {
 public:
  /// Build from aligned sequences (equal length, length >= 1).
  ContingencyTable(const core::EventSequence& a, const core::EventSequence& b);

  std::size_t rows() const { return row_labels_.size(); }
  std::size_t cols() const { return col_labels_.size(); }
  std::size_t total() const { return total_; }

  /// Joint count of (a-state r, b-state c).
  std::size_t count(std::size_t r, std::size_t c) const;
  std::size_t row_total(std::size_t r) const;
  std::size_t col_total(std::size_t c) const;

  const std::vector<std::string>& row_labels() const { return row_labels_; }
  const std::vector<std::string>& col_labels() const { return col_labels_; }

 private:
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<std::size_t> counts_;  // rows x cols, row-major
  std::size_t total_ = 0;
};

/// Shannon entropy (nats) of a categorical sequence's empirical distribution.
double entropy(const core::EventSequence& xs);

/// Mutual information I(A;B) in nats from the empirical joint distribution.
double mutual_information(const ContingencyTable& table);

/// Normalized mutual information in [0, 1]: I(A;B) / max(H(A), H(B));
/// 0 when either sequence is constant.
double normalized_mutual_information(const core::EventSequence& a,
                                     const core::EventSequence& b);

/// Cramér's V in [0, 1] from the chi-squared statistic of the table;
/// 0 for degenerate (single-row/column) tables.
double cramers_v(const ContingencyTable& table);

/// Lagged NMI: shift `b` back by `lag` samples (b leads a) and measure NMI
/// on the overlap. Useful for delayed sensor couplings.
double lagged_nmi(const core::EventSequence& a, const core::EventSequence& b,
                  std::size_t lag);

/// Best NMI over lags 0..max_lag, and the lag achieving it.
struct LagScan {
  double best_nmi = 0.0;
  std::size_t best_lag = 0;
};
LagScan scan_lags(const core::EventSequence& a, const core::EventSequence& b,
                  std::size_t max_lag);

}  // namespace desmine::ml
