#include "ml/dependence.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/log.h"
#include "util/error.h"

namespace desmine::ml {

ContingencyTable::ContingencyTable(const core::EventSequence& a,
                                   const core::EventSequence& b) {
  DESMINE_EXPECTS(a.size() == b.size(), "sequences must be aligned");
  DESMINE_EXPECTS(!a.empty(), "sequences must be non-empty");

  std::map<std::string, std::size_t> row_index, col_index;
  for (const std::string& s : a) {
    row_index.emplace(s, 0);
  }
  for (const std::string& s : b) {
    col_index.emplace(s, 0);
  }
  for (auto& [label, idx] : row_index) {
    idx = row_labels_.size();
    row_labels_.push_back(label);
  }
  for (auto& [label, idx] : col_index) {
    idx = col_labels_.size();
    col_labels_.push_back(label);
  }

  counts_.assign(row_labels_.size() * col_labels_.size(), 0);
  for (std::size_t t = 0; t < a.size(); ++t) {
    ++counts_[row_index[a[t]] * col_labels_.size() + col_index[b[t]]];
  }
  total_ = a.size();
}

std::size_t ContingencyTable::count(std::size_t r, std::size_t c) const {
  DESMINE_EXPECTS(r < rows() && c < cols(), "table index out of range");
  return counts_[r * cols() + c];
}

std::size_t ContingencyTable::row_total(std::size_t r) const {
  DESMINE_EXPECTS(r < rows(), "row out of range");
  std::size_t sum = 0;
  for (std::size_t c = 0; c < cols(); ++c) sum += counts_[r * cols() + c];
  return sum;
}

std::size_t ContingencyTable::col_total(std::size_t c) const {
  DESMINE_EXPECTS(c < cols(), "col out of range");
  std::size_t sum = 0;
  for (std::size_t r = 0; r < rows(); ++r) sum += counts_[r * cols() + c];
  return sum;
}

double entropy(const core::EventSequence& xs) {
  if (xs.empty()) return 0.0;
  std::map<std::string, std::size_t> counts;
  for (const std::string& s : xs) ++counts[s];
  const double n = static_cast<double>(xs.size());
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

double mutual_information(const ContingencyTable& table) {
  const double n = static_cast<double>(table.total());
  double mi = 0.0;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const double pr = static_cast<double>(table.row_total(r)) / n;
    for (std::size_t c = 0; c < table.cols(); ++c) {
      const std::size_t joint = table.count(r, c);
      if (joint == 0) continue;
      const double pj = static_cast<double>(joint) / n;
      const double pc = static_cast<double>(table.col_total(c)) / n;
      mi += pj * std::log(pj / (pr * pc));
    }
  }
  return std::max(0.0, mi);  // clamp tiny negative rounding
}

double normalized_mutual_information(const core::EventSequence& a,
                                     const core::EventSequence& b) {
  const double ha = entropy(a);
  const double hb = entropy(b);
  const double denom = std::max(ha, hb);
  if (denom == 0.0) return 0.0;  // at least one sequence is constant
  return mutual_information(ContingencyTable(a, b)) / denom;
}

double cramers_v(const ContingencyTable& table) {
  const std::size_t k = std::min(table.rows(), table.cols());
  if (k < 2) return 0.0;
  const double n = static_cast<double>(table.total());
  double chi2 = 0.0;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const double row = static_cast<double>(table.row_total(r));
    for (std::size_t c = 0; c < table.cols(); ++c) {
      const double expected =
          row * static_cast<double>(table.col_total(c)) / n;
      if (expected == 0.0) continue;
      const double diff = static_cast<double>(table.count(r, c)) - expected;
      chi2 += diff * diff / expected;
    }
  }
  return std::sqrt(chi2 / (n * static_cast<double>(k - 1)));
}

double lagged_nmi(const core::EventSequence& a, const core::EventSequence& b,
                  std::size_t lag) {
  DESMINE_EXPECTS(a.size() == b.size(), "sequences must be aligned");
  DESMINE_EXPECTS(lag < a.size(), "lag exceeds sequence length");
  // b[t - lag] predicts a[t]: compare a[lag..] with b[..n-lag].
  const core::EventSequence a_tail(a.begin() + static_cast<long>(lag),
                                   a.end());
  const core::EventSequence b_head(b.begin(),
                                   b.end() - static_cast<long>(lag));
  return normalized_mutual_information(a_tail, b_head);
}

LagScan scan_lags(const core::EventSequence& a, const core::EventSequence& b,
                  std::size_t max_lag) {
  DESMINE_EXPECTS(max_lag < a.size(), "max_lag exceeds sequence length");
  LagScan scan;
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    const double nmi = lagged_nmi(a, b, lag);
    if (nmi > scan.best_nmi) {
      scan.best_nmi = nmi;
      scan.best_lag = lag;
    }
  }
  DESMINE_LOG_DEBUG("lag scan complete",
                    {obs::kv("max_lag", max_lag),
                     obs::kv("best_lag", scan.best_lag),
                     obs::kv("best_nmi", scan.best_nmi)});
  return scan;
}

}  // namespace desmine::ml
