#include "ml/ocsvm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/stats.h"

namespace desmine::ml {

std::vector<double> OneClassSvm::standardize(
    const std::vector<double>& row) const {
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    out[f] = (row[f] - mean_[f]) / scale_[f];
  }
  return out;
}

double OneClassSvm::kernel(const std::vector<double>& a,
                           const std::vector<double>& b) const {
  double ss = 0.0;
  for (std::size_t f = 0; f < a.size(); ++f) {
    const double d = a[f] - b[f];
    ss += d * d;
  }
  return std::exp(-gamma_ * ss);
}

void OneClassSvm::fit(const FeatureMatrix& rows, const OcSvmConfig& config) {
  DESMINE_EXPECTS(!rows.empty(), "OC-SVM needs training rows");
  DESMINE_EXPECTS(config.nu > 0.0 && config.nu <= 1.0, "nu in (0, 1]");
  const std::size_t l = rows.size();
  const std::size_t F = rows.front().size();

  // Standardization statistics.
  mean_.assign(F, 0.0);
  scale_.assign(F, 1.0);
  for (const auto& row : rows) {
    for (std::size_t f = 0; f < F; ++f) mean_[f] += row[f];
  }
  for (double& m : mean_) m /= static_cast<double>(l);
  double total_var = 0.0;
  for (std::size_t f = 0; f < F; ++f) {
    double var = 0.0;
    for (const auto& row : rows) {
      var += (row[f] - mean_[f]) * (row[f] - mean_[f]);
    }
    var /= static_cast<double>(l);
    scale_[f] = var > 1e-12 ? std::sqrt(var) : 1.0;
    total_var += var > 1e-12 ? 1.0 : 0.0;  // post-standardization variance
  }

  support_.clear();
  support_.reserve(l);
  for (const auto& row : rows) support_.push_back(standardize(row));

  gamma_ = config.gamma > 0.0
               ? config.gamma
               : 1.0 / std::max(1.0, static_cast<double>(F));

  // Kernel matrix (training sets are subsampled; l stays modest).
  std::vector<std::vector<double>> K(l, std::vector<double>(l, 0.0));
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = i; j < l; ++j) {
      const double k = kernel(support_[i], support_[j]);
      K[i][j] = k;
      K[j][i] = k;
    }
  }

  // Feasible start: uniform alphas.
  const double C = 1.0 / (config.nu * static_cast<double>(l));
  alpha_.assign(l, 1.0 / static_cast<double>(l));
  DESMINE_ENSURES(alpha_.front() <= C + 1e-12,
                  "nu too small for the sample size");

  // Gradient g_i = (K alpha)_i.
  std::vector<double> g(l, 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < l; ++j) g[i] += K[i][j] * alpha_[j];
  }

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    // Most-violating pair: transfer weight from the highest-gradient point
    // that can still shrink to the lowest-gradient point that can grow.
    std::size_t up = l, down = l;
    double g_up = -std::numeric_limits<double>::infinity();
    double g_down = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < l; ++i) {
      if (alpha_[i] > 0.0 && g[i] > g_up) {
        g_up = g[i];
        up = i;
      }
      if (alpha_[i] < C && g[i] < g_down) {
        g_down = g[i];
        down = i;
      }
    }
    if (up == l || down == l || g_up - g_down < config.tolerance) break;

    const double curvature =
        std::max(1e-12, K[up][up] + K[down][down] - 2.0 * K[up][down]);
    double delta = (g_up - g_down) / curvature;
    delta = std::min(delta, alpha_[up]);
    delta = std::min(delta, C - alpha_[down]);
    if (delta <= 0.0) break;

    alpha_[up] -= delta;
    alpha_[down] += delta;
    for (std::size_t i = 0; i < l; ++i) {
      g[i] += delta * (K[down][i] - K[up][i]);
    }
  }

  // rho from margin support vectors (0 < alpha < C); fall back to the mean
  // decision value over support vectors.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha_[i] > 1e-9 && alpha_[i] < C - 1e-9) {
      rho_sum += g[i];
      ++rho_count;
    }
  }
  if (rho_count == 0) {
    for (std::size_t i = 0; i < l; ++i) {
      if (alpha_[i] > 1e-9) {
        rho_sum += g[i];
        ++rho_count;
      }
    }
  }
  rho_ = rho_count == 0 ? 0.0 : rho_sum / static_cast<double>(rho_count);

  // Compact: drop zero-alpha rows.
  FeatureMatrix sv;
  std::vector<double> sv_alpha;
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha_[i] > 1e-9) {
      sv.push_back(std::move(support_[i]));
      sv_alpha.push_back(alpha_[i]);
    }
  }
  support_ = std::move(sv);
  alpha_ = std::move(sv_alpha);
}

double OneClassSvm::decision(const std::vector<double>& row) const {
  DESMINE_EXPECTS(!support_.empty(), "OC-SVM not fitted");
  const std::vector<double> x = standardize(row);
  double f = 0.0;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    f += alpha_[i] * kernel(support_[i], x);
  }
  return f - rho_;
}

int OneClassSvm::predict_anomaly(const std::vector<double>& row) const {
  return decision(row) < 0.0 ? 1 : 0;
}

std::size_t OneClassSvm::support_vector_count() const {
  return support_.size();
}

}  // namespace desmine::ml
