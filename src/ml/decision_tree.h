// CART decision tree (Gini impurity, binary classification) — the base
// learner of the Random Forest baseline (§IV-B).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace desmine::ml {

using FeatureMatrix = std::vector<std::vector<double>>;

struct TreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 2;
  /// Features examined per split; 0 = all, otherwise a random subset of this
  /// size (the forest passes sqrt(F)).
  std::size_t features_per_split = 0;
};

class DecisionTree {
 public:
  /// Fit on rows[indices]; labels in {0, 1}. `rng` drives the per-split
  /// feature subsampling.
  void fit(const FeatureMatrix& rows, const std::vector<int>& labels,
           const std::vector<std::size_t>& indices, const TreeConfig& config,
           util::Rng& rng);

  int predict(const std::vector<double>& row) const;

  /// Probability of class 1 (leaf class-1 fraction).
  double predict_proba(const std::vector<double>& row) const;

  /// Total Gini impurity decrease contributed by each feature.
  const std::vector<double>& feature_importance() const { return importance_; }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    bool leaf = true;
    double p1 = 0.0;          ///< class-1 probability at a leaf
    std::size_t feature = 0;  ///< split feature (internal nodes)
    double threshold = 0.0;   ///< go left when value <= threshold
    std::size_t left = 0;
    std::size_t right = 0;
  };

  std::size_t build(const FeatureMatrix& rows, const std::vector<int>& labels,
                    std::vector<std::size_t>& indices, std::size_t begin,
                    std::size_t end, std::size_t depth,
                    const TreeConfig& config, util::Rng& rng);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace desmine::ml
