// Random Forest baseline (§IV-B): bagged CART trees with per-split feature
// subsampling, majority vote, and impurity-decrease feature importance
// (which the paper uses for the Fig. 11b ranking).
#pragma once

#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "util/rng.h"

namespace desmine::ml {

struct ForestConfig {
  std::size_t num_trees = 100;
  TreeConfig tree{};
  /// Per-split feature count; 0 = floor(sqrt(F)).
  std::size_t features_per_split = 0;
  std::uint64_t seed = 13;
};

class RandomForest {
 public:
  /// Fit on the full matrix; labels in {0, 1}. Each tree sees a bootstrap
  /// sample of `indices` (or of all rows when `indices` is empty).
  void fit(const FeatureMatrix& rows, const std::vector<int>& labels,
           const ForestConfig& config,
           const std::vector<std::size_t>& indices = {});

  int predict(const std::vector<double>& row) const;
  double predict_proba(const std::vector<double>& row) const;
  std::vector<int> predict_all(const FeatureMatrix& rows) const;

  /// Mean impurity-decrease importance, normalized to sum to 1.
  std::vector<double> feature_importance() const;

  /// Features ranked by importance, most important first.
  std::vector<std::size_t> ranked_features() const;

  std::size_t tree_count() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
  std::size_t feature_count_ = 0;
};

/// Subsample the majority class so classes balance 1:1 (the paper's RF
/// training setup). Returns row indices.
std::vector<std::size_t> balanced_indices(const std::vector<int>& labels,
                                          util::Rng& rng);

}  // namespace desmine::ml
