// Isolation Forest (Liu, Ting & Zhou 2008) — an additional unsupervised
// anomaly-detection baseline in the family the paper's introduction surveys
// (one-class SVM, K-Means): anomalies are points that isolate quickly under
// random axis-aligned splits. Included as an extension row of the Table II
// comparison (bench_table2_model_comparison prints the paper's three rows;
// this model is exercised in tests and available to users).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/decision_tree.h"  // FeatureMatrix
#include "util/rng.h"

namespace desmine::ml {

struct IsolationForestConfig {
  std::size_t num_trees = 100;
  std::size_t subsample = 256;  ///< points per tree (clamped to data size)
  std::uint64_t seed = 29;
};

class IsolationForest {
 public:
  /// Fit on (assumed mostly normal) data.
  void fit(const FeatureMatrix& rows, const IsolationForestConfig& config);

  /// Anomaly score in (0, 1): ~0.5 for average points, -> 1 for anomalies.
  double score(const std::vector<double>& row) const;

  /// 1 = anomaly: score above the calibrated threshold.
  int predict_anomaly(const std::vector<double>& row) const;

  /// Threshold = given percentile of training scores (e.g. 99).
  void calibrate_threshold(const FeatureMatrix& rows, double percentile);

  double threshold() const { return threshold_; }
  std::size_t tree_count() const { return trees_.size(); }

 private:
  struct Node {
    bool leaf = true;
    std::size_t size = 0;      ///< points reaching this leaf
    std::size_t feature = 0;
    double split = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
  };
  using Tree = std::vector<Node>;

  std::size_t build(Tree& tree, const FeatureMatrix& rows,
                    std::vector<std::size_t>& idx, std::size_t begin,
                    std::size_t end, std::size_t depth, std::size_t max_depth,
                    util::Rng& rng);
  double path_length(const Tree& tree, const std::vector<double>& row) const;

  std::vector<Tree> trees_;
  double expected_path_ = 1.0;  ///< c(subsample): average BST path length
  double threshold_ = 1.0;
  bool calibrated_ = false;
};

}  // namespace desmine::ml
