#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace desmine::ml {

namespace {

double gini(std::size_t ones, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(ones) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const FeatureMatrix& rows,
                       const std::vector<int>& labels,
                       const std::vector<std::size_t>& indices,
                       const TreeConfig& config, util::Rng& rng) {
  DESMINE_EXPECTS(!rows.empty() && rows.size() == labels.size(),
                  "rows/labels must align");
  DESMINE_EXPECTS(!indices.empty(), "tree needs at least one sample");
  nodes_.clear();
  importance_.assign(rows.front().size(), 0.0);
  std::vector<std::size_t> work = indices;
  build(rows, labels, work, 0, work.size(), 0, config, rng);
}

std::size_t DecisionTree::build(const FeatureMatrix& rows,
                                const std::vector<int>& labels,
                                std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end,
                                std::size_t depth, const TreeConfig& config,
                                util::Rng& rng) {
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();

  const std::size_t n = end - begin;
  std::size_t ones = 0;
  for (std::size_t k = begin; k < end; ++k) ones += labels[indices[k]];
  nodes_[node_id].p1 = static_cast<double>(ones) / static_cast<double>(n);

  const double parent_gini = gini(ones, n);
  const bool can_split = depth < config.max_depth &&
                         n >= config.min_samples_split && ones != 0 &&
                         ones != n;
  if (!can_split) return node_id;

  // Candidate features (all, or a uniform random subset for the forest).
  const std::size_t f_total = rows.front().size();
  std::vector<std::size_t> features;
  if (config.features_per_split == 0 || config.features_per_split >= f_total) {
    features.resize(f_total);
    for (std::size_t f = 0; f < f_total; ++f) features[f] = f;
  } else {
    features = rng.sample_without_replacement(f_total,
                                              config.features_per_split);
  }

  double best_gain = 1e-12;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> sorted;
  sorted.reserve(n);
  for (const std::size_t f : features) {
    sorted.clear();
    for (std::size_t k = begin; k < end; ++k) {
      sorted.emplace_back(rows[indices[k]][f], labels[indices[k]]);
    }
    std::sort(sorted.begin(), sorted.end());

    std::size_t left_ones = 0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      left_ones += static_cast<std::size_t>(sorted[k].second);
      if (sorted[k].first == sorted[k + 1].first) continue;  // no boundary
      const std::size_t left_n = k + 1;
      const std::size_t right_n = n - left_n;
      const double child =
          (static_cast<double>(left_n) * gini(left_ones, left_n) +
           static_cast<double>(right_n) * gini(ones - left_ones, right_n)) /
          static_cast<double>(n);
      const double gain = parent_gini - child;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = (sorted[k].first + sorted[k + 1].first) / 2.0;
      }
    }
  }
  if (best_gain <= 1e-12) return node_id;

  // Partition indices in place around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](std::size_t idx) {
        return rows[idx][best_feature] <= best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate numeric split

  importance_[best_feature] += best_gain * static_cast<double>(n);

  nodes_[node_id].leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::size_t left =
      build(rows, labels, indices, begin, mid, depth + 1, config, rng);
  const std::size_t right =
      build(rows, labels, indices, mid, end, depth + 1, config, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict_proba(const std::vector<double>& row) const {
  DESMINE_EXPECTS(!nodes_.empty(), "tree not fitted");
  std::size_t node = 0;
  while (!nodes_[node].leaf) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].p1;
}

int DecisionTree::predict(const std::vector<double>& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

}  // namespace desmine::ml
