#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace desmine::ml {

void RandomForest::fit(const FeatureMatrix& rows,
                       const std::vector<int>& labels,
                       const ForestConfig& config,
                       const std::vector<std::size_t>& indices) {
  DESMINE_EXPECTS(!rows.empty() && rows.size() == labels.size(),
                  "rows/labels must align");
  feature_count_ = rows.front().size();

  std::vector<std::size_t> pool = indices;
  if (pool.empty()) {
    pool.resize(rows.size());
    std::iota(pool.begin(), pool.end(), 0);
  }

  TreeConfig tree_config = config.tree;
  tree_config.features_per_split =
      config.features_per_split != 0
          ? config.features_per_split
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(feature_count_)))));

  util::Rng rng(config.seed);
  trees_.assign(config.num_trees, DecisionTree());
  for (std::size_t t = 0; t < config.num_trees; ++t) {
    util::Rng tree_rng = rng.fork(t);
    std::vector<std::size_t> bootstrap(pool.size());
    for (std::size_t k = 0; k < pool.size(); ++k) {
      bootstrap[k] = pool[tree_rng.index(pool.size())];
    }
    trees_[t].fit(rows, labels, bootstrap, tree_config, tree_rng);
  }
}

double RandomForest::predict_proba(const std::vector<double>& row) const {
  DESMINE_EXPECTS(!trees_.empty(), "forest not fitted");
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict_proba(row);
  return sum / static_cast<double>(trees_.size());
}

int RandomForest::predict(const std::vector<double>& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

std::vector<int> RandomForest::predict_all(const FeatureMatrix& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict(row));
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  DESMINE_EXPECTS(!trees_.empty(), "forest not fitted");
  std::vector<double> total(feature_count_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importance();
    for (std::size_t f = 0; f < feature_count_; ++f) total[f] += imp[f];
  }
  const double sum = std::accumulate(total.begin(), total.end(), 0.0);
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

std::vector<std::size_t> RandomForest::ranked_features() const {
  const std::vector<double> imp = feature_importance();
  std::vector<std::size_t> order(imp.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return imp[a] > imp[b];
  });
  return order;
}

std::vector<std::size_t> balanced_indices(const std::vector<int>& labels,
                                          util::Rng& rng) {
  std::vector<std::size_t> minority, majority;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    (labels[i] == 1 ? minority : majority).push_back(i);
  }
  DESMINE_EXPECTS(!minority.empty(), "no positive samples to balance around");
  if (majority.size() <= minority.size()) {
    std::vector<std::size_t> all = minority;
    all.insert(all.end(), majority.begin(), majority.end());
    return all;
  }
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(majority.size(), minority.size());
  std::vector<std::size_t> out = minority;
  for (std::size_t p : picks) out.push_back(majority[p]);
  return out;
}

}  // namespace desmine::ml
