#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/log.h"
#include "util/error.h"
#include "util/stats.h"

namespace desmine::ml {

namespace {

/// Average path length of an unsuccessful BST search over n points — the
/// normalizer c(n) from the iForest paper.
double average_path(std::size_t n) {
  if (n < 2) return 0.0;
  const double nd = static_cast<double>(n);
  const double harmonic = std::log(nd - 1.0) + 0.5772156649015329;
  return 2.0 * harmonic - 2.0 * (nd - 1.0) / nd;
}

}  // namespace

void IsolationForest::fit(const FeatureMatrix& rows,
                          const IsolationForestConfig& config) {
  DESMINE_EXPECTS(!rows.empty(), "isolation forest needs data");
  DESMINE_EXPECTS(config.num_trees > 0, "need at least one tree");

  const std::size_t sample =
      std::min<std::size_t>(config.subsample, rows.size());
  const auto max_depth = static_cast<std::size_t>(
      std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(sample)))));
  expected_path_ = average_path(sample);

  util::Rng rng(config.seed);
  trees_.assign(config.num_trees, Tree());
  for (std::size_t t = 0; t < config.num_trees; ++t) {
    util::Rng tree_rng = rng.fork(t);
    std::vector<std::size_t> idx =
        tree_rng.sample_without_replacement(rows.size(), sample);
    trees_[t].reserve(2 * sample);
    build(trees_[t], rows, idx, 0, idx.size(), 0, max_depth, tree_rng);
  }
  calibrated_ = false;
  threshold_ = 1.0;
  DESMINE_LOG_DEBUG("isolation forest fitted",
                    {obs::kv("trees", config.num_trees),
                     obs::kv("rows", rows.size()),
                     obs::kv("subsample", sample),
                     obs::kv("max_depth", max_depth)});
}

std::size_t IsolationForest::build(Tree& tree, const FeatureMatrix& rows,
                                   std::vector<std::size_t>& idx,
                                   std::size_t begin, std::size_t end,
                                   std::size_t depth, std::size_t max_depth,
                                   util::Rng& rng) {
  const std::size_t node_id = tree.size();
  tree.emplace_back();
  tree[node_id].size = end - begin;

  if (end - begin <= 1 || depth >= max_depth) return node_id;

  // Random feature with a non-degenerate range.
  const std::size_t dims = rows.front().size();
  std::size_t feature = 0;
  double lo = 0.0, hi = 0.0;
  bool found = false;
  for (std::size_t attempt = 0; attempt < dims; ++attempt) {
    feature = rng.index(dims);
    lo = hi = rows[idx[begin]][feature];
    for (std::size_t k = begin + 1; k < end; ++k) {
      lo = std::min(lo, rows[idx[k]][feature]);
      hi = std::max(hi, rows[idx[k]][feature]);
    }
    if (hi > lo) {
      found = true;
      break;
    }
  }
  if (!found) return node_id;  // all candidate features constant here

  const double split = rng.uniform(lo, hi);
  const auto mid_it =
      std::partition(idx.begin() + static_cast<long>(begin),
                     idx.begin() + static_cast<long>(end),
                     [&](std::size_t i) { return rows[i][feature] < split; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return node_id;

  tree[node_id].leaf = false;
  tree[node_id].feature = feature;
  tree[node_id].split = split;
  const std::size_t left =
      build(tree, rows, idx, begin, mid, depth + 1, max_depth, rng);
  const std::size_t right =
      build(tree, rows, idx, mid, end, depth + 1, max_depth, rng);
  tree[node_id].left = left;
  tree[node_id].right = right;
  return node_id;
}

double IsolationForest::path_length(const Tree& tree,
                                    const std::vector<double>& row) const {
  std::size_t node = 0;
  double depth = 0.0;
  while (!tree[node].leaf) {
    node = row[tree[node].feature] < tree[node].split ? tree[node].left
                                                      : tree[node].right;
    depth += 1.0;
  }
  // Unresolved leaves stand for subtrees of `size` points.
  return depth + average_path(tree[node].size);
}

double IsolationForest::score(const std::vector<double>& row) const {
  DESMINE_EXPECTS(!trees_.empty(), "isolation forest not fitted");
  double total = 0.0;
  for (const Tree& tree : trees_) total += path_length(tree, row);
  const double mean_path = total / static_cast<double>(trees_.size());
  if (expected_path_ <= 0.0) return 0.5;
  return std::pow(2.0, -mean_path / expected_path_);
}

int IsolationForest::predict_anomaly(const std::vector<double>& row) const {
  DESMINE_EXPECTS(calibrated_, "calibrate_threshold() must run first");
  return score(row) > threshold_ ? 1 : 0;
}

void IsolationForest::calibrate_threshold(const FeatureMatrix& rows,
                                          double percentile) {
  std::vector<double> scores;
  scores.reserve(rows.size());
  for (const auto& row : rows) scores.push_back(score(row));
  threshold_ = util::percentile(scores, percentile);
  calibrated_ = true;
  DESMINE_LOG_DEBUG("isolation forest calibrated",
                    {obs::kv("percentile", percentile),
                     obs::kv("threshold", threshold_)});
}

}  // namespace desmine::ml
