// Small descriptive-statistics toolkit used by the evaluation harness.
//
// The paper reports most results as CDFs, histograms and percentile summaries
// (Figures 3, 4, 5, 10). These helpers compute exactly those artifacts so the
// bench binaries can print paper-style series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace desmine::util {

/// Mean of a sample; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for samples of size < 2.
double stddev(const std::vector<double>& xs);

/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> xs, double p);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  ///< P(X <= value)
};

/// Empirical CDF of a sample, one point per distinct value.
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Fraction of samples <= threshold.
double cdf_at(const std::vector<double>& xs, double threshold);

/// Fixed-width histogram over [lo, hi) with `bins` equal bins; values outside
/// the range are clamped into the first/last bin.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  /// Inclusive lower edge of bin b.
  double bin_lo(std::size_t b) const;
  /// Exclusive upper edge of bin b.
  double bin_hi(std::size_t b) const;
  std::size_t total() const;
  /// counts[b] / total, or 0 when empty.
  double fraction(std::size_t b) const;
};

Histogram histogram(const std::vector<double>& xs, double lo, double hi,
                    std::size_t bins);

/// Five-number-style summary used in log lines.
struct Summary {
  std::size_t n = 0;
  double min = 0.0, p25 = 0.0, median = 0.0, p75 = 0.0, max = 0.0;
  double mean = 0.0, stddev = 0.0;
};

Summary summarize(std::vector<double> xs);

/// Render a summary as a single human-readable line.
std::string to_string(const Summary& s);

}  // namespace desmine::util
