#include "util/strings.h"

#include <cctype>
#include <sstream>

namespace desmine::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string fixed(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace desmine::util
