// Aligned text tables and CSV output for the bench harness.
//
// Every bench binary prints paper-style rows; Table renders them with aligned
// columns on stdout and can also persist the same rows as CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace desmine::util {

/// Column-aligned text table with an optional title, also serializable as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with space-padded, pipe-separated columns.
  std::string to_text(const std::string& title = "") const;

  /// Render as RFC-4180-ish CSV (fields containing comma/quote are quoted).
  std::string to_csv() const;

  /// Write the CSV rendering to a file; throws RuntimeError on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace desmine::util
