// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by io::serialize to append an integrity trailer to artifacts and by
// robust::checkpoint to fingerprint miner configurations, so a truncated or
// bit-flipped file is rejected with a clean error instead of silently
// loading garbage model weights.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace desmine::util {

/// CRC of `len` bytes, continuing from `seed` (pass a previous crc32 result
/// to checksum data in chunks; 0 starts a fresh checksum).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace desmine::util
