// Fixed-size thread pool used to train independent pairwise NMT models in
// parallel (the paper notes pair models are embarrassingly parallel, §III-A2).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace desmine::util {

/// A minimal work-queue thread pool.
///
/// Tasks may throw: the exception is captured into the task's future. The
/// destructor drains outstanding tasks before joining, so submitted work is
/// never silently dropped.
///
/// Every pool reports into the process-wide metrics registry:
///   threadpool.queue_depth      gauge    tasks currently queued
///   threadpool.tasks_submitted  counter  submit() calls
///   threadpool.tasks_completed  counter  tasks run to completion
///   threadpool.queue_wait_us    histogram  time a task sat queued
class ThreadPool {
 public:
  /// Spawn `threads` workers (>= 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(
          {[task] { (*task)(); }, std::chrono::steady_clock::now()});
    }
    submitted_.inc();
    queue_depth_.add(1.0);
    cv_.notify_one();
    return fut;
  }

  /// Outcome of draining a batch of futures: every future is consumed even
  /// when some threw, so one bad task cannot strand the rest.
  struct DrainStats {
    std::size_t completed = 0;  ///< futures that resolved without throwing
    std::size_t failed = 0;
    std::string first_error;  ///< what() of the first failure, in order
    std::exception_ptr first_exception;
  };

  /// Wait for every future, collecting (not rethrowing) all exceptions.
  /// "First" follows the order of the vector, so it is deterministic.
  static DrainStats wait_all(std::vector<std::future<void>>& futures);

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// All tasks run even when some throw; if any failed, a RuntimeError
  /// aggregating the failure count and the first message is thrown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  struct Task {
    std::function<void()> run;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  obs::Gauge& queue_depth_;
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Histogram& queue_wait_us_;
};

}  // namespace desmine::util
