// Fixed-size thread pool used to train independent pairwise NMT models in
// parallel (the paper notes pair models are embarrassingly parallel, §III-A2).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace desmine::util {

/// A minimal work-queue thread pool.
///
/// Tasks may throw: the exception is captured into the task's future. The
/// destructor drains outstanding tasks before joining, so submitted work is
/// never silently dropped.
class ThreadPool {
 public:
  /// Spawn `threads` workers (>= 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace desmine::util
