#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace desmine::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  DESMINE_EXPECTS(!xs.empty(), "percentile of empty sample");
  DESMINE_EXPECTS(p >= 0.0 && p <= 100.0, "percentile p in [0,100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::vector<CdfPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Emit one point per distinct value, carrying the cumulative fraction of
    // all samples <= that value.
    if (i + 1 == xs.size() || xs[i + 1] != xs[i]) {
      out.push_back({xs[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

double cdf_at(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : xs) count += (x <= threshold) ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

double Histogram::bin_lo(std::size_t b) const {
  return lo + (hi - lo) * static_cast<double>(b) /
                  static_cast<double>(counts.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1); }

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) t += c;
  return t;
}

double Histogram::fraction(std::size_t b) const {
  const std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(counts[b]) / static_cast<double>(t);
}

Histogram histogram(const std::vector<double>& xs, double lo, double hi,
                    std::size_t bins) {
  DESMINE_EXPECTS(bins > 0, "histogram needs at least one bin");
  DESMINE_EXPECTS(lo < hi, "histogram range must be non-empty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto b = static_cast<long>(std::floor((x - lo) / width));
    b = std::clamp(b, 0L, static_cast<long>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(b)];
  }
  return h;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.p25 = percentile(xs, 25);
  s.median = percentile(xs, 50);
  s.p75 = percentile(xs, 75);
  return s;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.n << " min=" << s.min << " p25=" << s.p25
     << " median=" << s.median << " p75=" << s.p75 << " max=" << s.max
     << " mean=" << s.mean << " sd=" << s.stddev;
  return os.str();
}

}  // namespace desmine::util
