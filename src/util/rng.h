// Deterministic random number generation.
//
// Every stochastic desmine component takes an explicit seed and owns its own
// Rng; there is no global generator, so pipelines are bitwise reproducible
// and components can be re-seeded independently (e.g. one stream per sensor
// pair when training NMT models in parallel).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/error.h"

namespace desmine::util {

/// Seeded pseudo-random generator with the distribution helpers desmine needs.
///
/// Wraps std::mt19937_64. Cheap to copy; copies continue the stream
/// independently. `fork(tag)` derives an independent child stream, which is
/// how parallel trainers obtain per-task seeds from one master seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive a deterministic child generator from this generator's seed and a
  /// caller-chosen tag. Does not advance this generator's stream.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    // SplitMix64 finalizer: decorrelates (seed, tag) pairs cheaply.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (tag + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    DESMINE_EXPECTS(lo <= hi, "uniform_int range");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t in [0, n-1]. Requires n > 0.
  std::size_t index(std::size_t n) {
    DESMINE_EXPECTS(n > 0, "index needs non-empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights) {
    DESMINE_EXPECTS(!weights.empty(), "categorical needs weights");
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Sample k distinct indices from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    DESMINE_EXPECTS(k <= n, "cannot sample more than population");
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    // Partial Fisher–Yates: only the first k slots need to be randomized.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + std::uniform_int_distribution<std::size_t>(0, n - 1 - i)(engine_);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace desmine::util
