// Build identity embedded at CMake configure time.
#pragma once

namespace desmine::util {

/// "<semver>+<git-sha> (<build-type>)", e.g. "1.0.0+27cb76d (Release)".
/// The SHA is resolved by CMake at configure time ("unknown" outside a git
/// checkout), so the string identifies exactly what a running server was
/// built from — surfaced by the desmine_serve stats op and /statusz.
const char* desmine_version();

}  // namespace desmine::util
