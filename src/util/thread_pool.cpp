#include "util/thread_pool.h"

#include "util/error.h"

namespace desmine::util {

ThreadPool::ThreadPool(std::size_t threads)
    : queue_depth_(obs::metrics().gauge("threadpool.queue_depth")),
      submitted_(obs::metrics().counter("threadpool.tasks_submitted")),
      completed_(obs::metrics().counter("threadpool.tasks_completed")),
      queue_wait_us_(obs::metrics().histogram("threadpool.queue_wait_us")) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining work even when stopping so submitted futures resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_.add(-1.0);
    queue_wait_us_.record(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - task.enqueued)
            .count());
    task.run();
    completed_.inc();
  }
}

ThreadPool::DrainStats ThreadPool::wait_all(
    std::vector<std::future<void>>& futures) {
  DrainStats stats;
  for (auto& f : futures) {
    try {
      f.get();
      ++stats.completed;
    } catch (const std::exception& e) {
      if (stats.failed == 0) {
        stats.first_error = e.what();
        stats.first_exception = std::current_exception();
      }
      ++stats.failed;
    } catch (...) {
      if (stats.failed == 0) {
        stats.first_error = "(non-standard exception)";
        stats.first_exception = std::current_exception();
      }
      ++stats.failed;
    }
  }
  return stats;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  const DrainStats stats = wait_all(futures);
  if (stats.failed > 0) {
    throw RuntimeError("parallel_for: " + std::to_string(stats.failed) +
                       " of " + std::to_string(n) + " tasks failed; first: " +
                       stats.first_error);
  }
}

}  // namespace desmine::util
