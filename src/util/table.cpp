#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace desmine::util {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DESMINE_EXPECTS(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_text(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = header_.size() - 1;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open for writing: " + path);
  out << to_csv();
  if (!out) throw RuntimeError("write failed: " + path);
}

}  // namespace desmine::util
