// Error handling primitives shared across desmine.
//
// The library follows the C++ Core Guidelines convention of throwing on
// contract violations at API boundaries (I.5/I.6): callers get a typed
// exception carrying the failed condition and location instead of UB.
#pragma once

#include <stdexcept>
#include <string>

namespace desmine {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a desmine bug, not a caller bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown for runtime failures (I/O, numeric breakdown) the caller may retry.
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_precondition(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + cond + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}
[[noreturn]] inline void fail_invariant(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw InvariantError(std::string("invariant failed: ") + cond + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace desmine

/// Validate a caller-supplied argument; throws PreconditionError on failure.
#define DESMINE_EXPECTS(cond, msg)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::desmine::detail::fail_precondition(#cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Validate an internal invariant; throws InvariantError on failure.
#define DESMINE_ENSURES(cond, msg)                                        \
  do {                                                                    \
    if (!(cond))                                                          \
      ::desmine::detail::fail_invariant(#cond, __FILE__, __LINE__, msg);  \
  } while (0)
