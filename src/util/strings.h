// String helpers shared by the language-generation and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace desmine::util {

/// Split on a single-character delimiter; adjacent delimiters yield empty
/// fields (CSV-style).
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; never yields empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// Render a double with fixed precision (for table output).
std::string fixed(double v, int precision);

}  // namespace desmine::util
