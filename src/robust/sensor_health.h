// Per-sensor health tracking for degraded-mode detection.
//
// The paper's anomaly score a_t assumes every kept sensor reports a clean
// value at every tick, but deployed telemetry routinely violates that:
// feeds drop out, go stale, or flood with states never seen in training.
// Scoring such a sensor's pair models would report *broken relationships*
// that are really *broken plumbing*. The tracker classifies each sensor
// per tick so the detector can exclude unhealthy sensors from a window's
// valid set instead of counting their edges as anomalies:
//
//   healthy   normal operation
//   dropped   >= drop_after_missing consecutive missing ticks
//   flooding  <unk> rate over a sliding window >= max_unk_rate
//   stale     value unchanged for >= stale_after ticks (opt-in; many real
//             sensors are legitimately lazy, so 0 disables the check)
//
// Re-admission is hysteresis-based: once unhealthy, a sensor must deliver
// readmit_after consecutive clean ticks (present, not <unk>) with no
// condition firing before it counts as healthy again — a flapping feed
// cannot oscillate the valid set every tick.
//
// Transitions are recorded in the metrics registry (detect.sensor.dropped /
// .stale / .flooding / .readmitted) so runs can be audited after the fact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace desmine::robust {

enum class SensorState : std::uint8_t {
  kHealthy,
  kStale,
  kDropped,
  kFlooding,
};

std::string_view to_string(SensorState state);

struct HealthConfig {
  /// Consecutive missing ticks before a sensor is dropped.
  std::size_t drop_after_missing = 3;
  /// Ticks without a value change before a sensor is stale; 0 disables.
  std::size_t stale_after = 0;
  /// <unk> fraction over the sliding window at/above which the sensor is
  /// flooding (its states were never seen in training).
  double max_unk_rate = 0.5;
  /// Sliding-window length for the <unk> rate.
  std::size_t unk_window = 64;
  /// Observations required before the <unk> rate is trusted (a single
  /// leading <unk> must not flood a sensor).
  std::size_t min_unk_samples = 8;
  /// Clean ticks (present, known state, no condition firing) required to
  /// re-admit an unhealthy sensor.
  std::size_t readmit_after = 8;
};

class SensorHealthTracker {
 public:
  /// One tick's reading of one sensor.
  struct Observation {
    bool present = true;  ///< false = the tick carried no value (dropout)
    bool unknown = false;  ///< the value mapped to <unk> (unseen in training)
    char value = 0;        ///< encoded state, for change detection
  };

  SensorHealthTracker(std::vector<std::string> sensor_names,
                      HealthConfig config);

  /// Feed sensor k's observation for its next tick and return the state
  /// after applying it. Each sensor keeps its own clock, so sensors may be
  /// observed in any order within a tick.
  SensorState observe(std::size_t k, const Observation& obs);

  SensorState state(std::size_t k) const;
  bool healthy(std::size_t k) const {
    return state(k) == SensorState::kHealthy;
  }

  /// Indices of sensors currently not healthy, ascending.
  std::vector<std::size_t> unhealthy_sensors() const;
  std::size_t unhealthy_count() const;

  std::size_t sensor_count() const { return sensors_.size(); }
  const std::string& name(std::size_t k) const;
  const HealthConfig& config() const { return config_; }

 private:
  struct Sensor {
    std::string name;
    SensorState state = SensorState::kHealthy;
    std::size_t consecutive_missing = 0;
    std::size_t clean_streak = 0;
    std::size_t ticks_since_change = 0;
    bool seen = false;
    char last_value = 0;
    // Ring buffer over the last unk_window present ticks.
    std::vector<std::uint8_t> unk_ring;
    std::size_t ring_pos = 0;
    std::size_t ring_count = 0;
    std::size_t unk_in_ring = 0;
  };

  void transition(Sensor& sensor, SensorState next);

  HealthConfig config_;
  std::vector<Sensor> sensors_;
};

}  // namespace desmine::robust
