#include "robust/checkpoint.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "obs/json.h"
#include "util/error.h"

namespace desmine::robust {

namespace {

/// Hex encoding of a double's bit pattern — exact round-trip.
std::string double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

bool bits_to_double(const std::string& hex, double& out) {
  if (hex.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool parse_size(const std::map<std::string, std::string>& m, const char* key,
                std::size_t& out) {
  const auto it = m.find(key);
  if (it == m.end()) return false;
  try {
    out = static_cast<std::size_t>(std::stoull(it->second));
  } catch (...) {
    return false;
  }
  return true;
}

std::string get_or(const std::map<std::string, std::string>& m,
                   const char* key, const std::string& fallback = "") {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

}  // namespace

bool parse_flat_json(std::string_view line,
                     std::map<std::string, std::string>& out) {
  out.clear();
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) return false;
        const char esc = line[i++];
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (i + 4 > line.size()) return false;
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = line[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Journal strings only escape control characters this way.
            s += static_cast<char>(code & 0xFF);
            break;
          }
          default: return false;
        }
      } else {
        s += c;
      }
    }
    if (i >= line.size()) return false;  // unterminated
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;  // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return false;
    } else {
      // Bare literal: number, true/false/null. Runs to , or }.
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             line[i] != ' ' && line[i] != '\t') {
        ++i;
      }
      if (i == start) return false;
      value.assign(line.substr(start, i - start));
    }
    out[key] = std::move(value);
    skip_ws();
    if (i >= line.size()) return false;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return true;
    return false;
  }
}

std::string checkpoint_model_dir(const std::string& journal_path) {
  return journal_path + ".models";
}

std::string checkpoint_model_file(const std::string& journal_path,
                                  std::size_t pair_index) {
  return checkpoint_model_dir(journal_path) + "/pair_" +
         std::to_string(pair_index) + ".bin";
}

CheckpointState load_checkpoint(const std::string& path) {
  CheckpointState state;
  std::ifstream is(path);
  if (!is) return state;
  state.exists = true;

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::map<std::string, std::string> fields;
    if (!parse_flat_json(line, fields)) {
      // A crash mid-append leaves a partial trailing line; skip it.
      ++state.skipped_lines;
      continue;
    }
    const std::string type = get_or(fields, "type");
    if (type == "header") {
      std::size_t fp = 0;
      if (parse_size(fields, "fingerprint", fp)) {
        state.fingerprint = static_cast<std::uint32_t>(fp);
        state.has_header = true;
      }
      parse_size(fields, "pairs", state.pair_count);
      continue;
    }
    if (type != "pair") {
      ++state.skipped_lines;
      continue;
    }
    PairRecord rec;
    if (!parse_size(fields, "pair", rec.pair_index) ||
        !parse_size(fields, "src", rec.src) ||
        !parse_size(fields, "dst", rec.dst)) {
      ++state.skipped_lines;
      continue;
    }
    rec.ok = get_or(fields, "ok") == "true";
    parse_size(fields, "steps", rec.steps);
    parse_size(fields, "attempts", rec.attempts);
    rec.error = get_or(fields, "error");
    rec.model_file = get_or(fields, "model_file");
    if (!bits_to_double(get_or(fields, "bleu_bits"), rec.bleu)) {
      try {
        rec.bleu = std::stod(get_or(fields, "bleu", "0"));
      } catch (...) {
        rec.bleu = 0.0;
      }
    }
    if (!bits_to_double(get_or(fields, "runtime_bits"), rec.runtime_s)) {
      try {
        rec.runtime_s = std::stod(get_or(fields, "runtime_s", "0"));
      } catch (...) {
        rec.runtime_s = 0.0;
      }
    }
    if (rec.ok) {
      state.completed[rec.pair_index] = std::move(rec);
    } else {
      ++state.failed_records;
    }
  }
  return state;
}

CheckpointJournal::CheckpointJournal(const std::string& path, bool append)
    : path_(path) {
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) {
    throw RuntimeError("cannot open checkpoint journal " + path + ": " +
                       std::strerror(errno));
  }
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointJournal::write_line(const std::string& line) {
  std::lock_guard lock(mutex_);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    throw RuntimeError("checkpoint journal write failed: " + path_);
  }
  // fsync so a finished pair survives a machine crash, not just a process
  // crash. One sync per pair is negligible next to minutes of training.
  ::fsync(::fileno(file_));
}

void CheckpointJournal::write_header(std::uint32_t fingerprint,
                                     std::size_t pair_count) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("header");
  w.key("fingerprint").value(static_cast<std::uint64_t>(fingerprint));
  w.key("pairs").value(static_cast<std::uint64_t>(pair_count));
  w.end_object();
  write_line(w.str());
}

void CheckpointJournal::append(const PairRecord& record) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("pair");
  w.key("pair").value(static_cast<std::uint64_t>(record.pair_index));
  w.key("src").value(static_cast<std::uint64_t>(record.src));
  w.key("dst").value(static_cast<std::uint64_t>(record.dst));
  w.key("ok").value(record.ok);
  w.key("bleu").value(record.bleu);
  w.key("bleu_bits").value(double_bits(record.bleu));
  w.key("runtime_s").value(record.runtime_s);
  w.key("runtime_bits").value(double_bits(record.runtime_s));
  w.key("steps").value(static_cast<std::uint64_t>(record.steps));
  w.key("attempts").value(static_cast<std::uint64_t>(record.attempts));
  if (!record.error.empty()) w.key("error").value(record.error);
  if (!record.model_file.empty()) {
    w.key("model_file").value(record.model_file);
  }
  w.end_object();
  write_line(w.str());
}

}  // namespace desmine::robust
