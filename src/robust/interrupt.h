// SIGINT/SIGTERM-to-flag bridge for graceful shutdown.
//
// Signal handlers can do almost nothing async-signal-safely, so the handler
// only sets an atomic flag. Long-running loops (the miner, between pairs)
// poll interrupted() through MinerConfig::should_abort and unwind normally —
// flushing the checkpoint journal and letting the CLI dump metrics — instead
// of dying mid-write.
#pragma once

namespace desmine::robust {

/// Install SIGINT/SIGTERM handlers that set the interrupted flag. Safe to
/// call more than once.
void install_signal_flag();

/// True once SIGINT/SIGTERM was received (or request_interrupt was called).
bool interrupted();

/// Set the flag programmatically (tests, or an embedding application's own
/// shutdown path).
void request_interrupt();

/// Clear the flag (tests).
void reset_interrupted();

/// Install a SIGHUP handler that sets the reload-requested flag (the
/// conventional "re-read your config/model" signal; desmine_serve's watcher
/// thread polls it and triggers a hot reload). Safe to call more than once.
void install_reload_signal();

/// True once SIGHUP was received (or request_reload was called) and the
/// request has not been cleared yet.
bool reload_requested();

/// Set the reload flag programmatically (tests).
void request_reload();

/// Acknowledge a reload request.
void clear_reload_request();

}  // namespace desmine::robust
