// Retry policy: bounded attempts with exponential backoff and jitter.
//
// The miner retries failed pair trainings (crash or divergence) with a
// forked seed and a halved learning rate; the delay between attempts grows
// exponentially and is jittered so a burst of correlated failures (e.g. a
// transient I/O stall hitting every pool worker) does not retry in
// lockstep. Jitter draws from a caller-supplied Rng, so retry timing is
// deterministic under a fixed seed — tests can assert the exact schedule.
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace desmine::robust {

struct RetryPolicy {
  std::size_t max_retries = 2;   ///< retries after the first attempt
  double base_delay_ms = 0.0;    ///< delay before retry 1; 0 = no sleeping
  double multiplier = 2.0;       ///< exponential growth per retry
  double max_delay_ms = 30000.0; ///< cap on the un-jittered delay
  double jitter = 0.25;          ///< +/- fraction of the delay, uniform

  /// Jittered delay before retry `retry` (1-based; retry 0 returns 0).
  double delay_ms(std::size_t retry, util::Rng& rng) const;

  /// Sleep for delay_ms(retry, rng) on the calling thread.
  void backoff(std::size_t retry, util::Rng& rng) const;
};

}  // namespace desmine::robust
