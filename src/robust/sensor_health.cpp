#include "robust/sensor_health.h"

#include "obs/metrics.h"
#include "util/error.h"

namespace desmine::robust {

std::string_view to_string(SensorState state) {
  switch (state) {
    case SensorState::kHealthy:
      return "healthy";
    case SensorState::kStale:
      return "stale";
    case SensorState::kDropped:
      return "dropped";
    case SensorState::kFlooding:
      return "flooding";
  }
  return "unknown";
}

SensorHealthTracker::SensorHealthTracker(
    std::vector<std::string> sensor_names, HealthConfig config)
    : config_(config) {
  DESMINE_EXPECTS(config_.drop_after_missing > 0,
                  "drop_after_missing must be positive");
  DESMINE_EXPECTS(config_.unk_window > 0, "unk_window must be positive");
  DESMINE_EXPECTS(config_.readmit_after > 0, "readmit_after must be positive");
  DESMINE_EXPECTS(config_.max_unk_rate >= 0.0 && config_.max_unk_rate <= 1.0,
                  "max_unk_rate must lie in [0, 1]");
  sensors_.reserve(sensor_names.size());
  for (std::string& name : sensor_names) {
    Sensor s;
    s.name = std::move(name);
    s.unk_ring.assign(config_.unk_window, 0);
    sensors_.push_back(std::move(s));
  }
}

void SensorHealthTracker::transition(Sensor& sensor, SensorState next) {
  if (sensor.state == next) return;
  switch (next) {
    case SensorState::kDropped:
      obs::metrics().counter("detect.sensor.dropped").inc();
      break;
    case SensorState::kStale:
      obs::metrics().counter("detect.sensor.stale").inc();
      break;
    case SensorState::kFlooding:
      obs::metrics().counter("detect.sensor.flooding").inc();
      break;
    case SensorState::kHealthy:
      obs::metrics().counter("detect.sensor.readmitted").inc();
      break;
  }
  sensor.state = next;
}

SensorState SensorHealthTracker::observe(std::size_t k,
                                         const Observation& obs) {
  DESMINE_EXPECTS(k < sensors_.size(), "sensor index out of range");
  Sensor& s = sensors_[k];

  if (!obs.present) {
    ++s.consecutive_missing;
    // A gap does not reset the change clock: a sensor that vanishes while
    // stuck is still stuck.
    if (s.seen) ++s.ticks_since_change;
  } else {
    s.consecutive_missing = 0;
    // Slide the <unk> window forward by one present tick.
    s.unk_in_ring -= s.unk_ring[s.ring_pos];
    s.unk_ring[s.ring_pos] = obs.unknown ? 1 : 0;
    s.unk_in_ring += s.unk_ring[s.ring_pos];
    s.ring_pos = (s.ring_pos + 1) % s.unk_ring.size();
    if (s.ring_count < s.unk_ring.size()) ++s.ring_count;

    const bool changed = !s.seen || obs.value != s.last_value;
    s.seen = true;
    s.last_value = obs.value;
    s.ticks_since_change = changed ? 0 : s.ticks_since_change + 1;
  }

  const bool cond_dropped = s.consecutive_missing >= config_.drop_after_missing;
  const bool cond_flooding =
      s.unk_in_ring > 0 && s.ring_count >= config_.min_unk_samples &&
      static_cast<double>(s.unk_in_ring) >=
          config_.max_unk_rate * static_cast<double>(s.ring_count);
  const bool cond_stale = config_.stale_after > 0 &&
                          s.ticks_since_change >= config_.stale_after;

  if (cond_dropped) {
    s.clean_streak = 0;
    transition(s, SensorState::kDropped);
  } else if (cond_flooding) {
    s.clean_streak = 0;
    transition(s, SensorState::kFlooding);
  } else if (cond_stale) {
    s.clean_streak = 0;
    transition(s, SensorState::kStale);
  } else if (s.state != SensorState::kHealthy) {
    // Hysteresis: only a run of clean ticks re-admits the sensor.
    if (obs.present && !obs.unknown) {
      if (++s.clean_streak >= config_.readmit_after) {
        s.clean_streak = 0;
        transition(s, SensorState::kHealthy);
      }
    } else {
      s.clean_streak = 0;
    }
  }
  return s.state;
}

SensorState SensorHealthTracker::state(std::size_t k) const {
  DESMINE_EXPECTS(k < sensors_.size(), "sensor index out of range");
  return sensors_[k].state;
}

std::vector<std::size_t> SensorHealthTracker::unhealthy_sensors() const {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < sensors_.size(); ++k) {
    if (sensors_[k].state != SensorState::kHealthy) out.push_back(k);
  }
  return out;
}

std::size_t SensorHealthTracker::unhealthy_count() const {
  std::size_t n = 0;
  for (const Sensor& s : sensors_) {
    if (s.state != SensorState::kHealthy) ++n;
  }
  return n;
}

const std::string& SensorHealthTracker::name(std::size_t k) const {
  DESMINE_EXPECTS(k < sensors_.size(), "sensor index out of range");
  return sensors_[k].name;
}

}  // namespace desmine::robust
