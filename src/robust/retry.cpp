#include "robust/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace desmine::robust {

double RetryPolicy::delay_ms(std::size_t retry, util::Rng& rng) const {
  if (retry == 0 || base_delay_ms <= 0.0) return 0.0;
  double delay = base_delay_ms *
                 std::pow(multiplier, static_cast<double>(retry - 1));
  delay = std::min(delay, max_delay_ms);
  if (jitter > 0.0) {
    delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max(delay, 0.0);
}

void RetryPolicy::backoff(std::size_t retry, util::Rng& rng) const {
  const double delay = delay_ms(retry, rng);
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
}

}  // namespace desmine::robust
