#include "robust/interrupt.h"

#include <csignal>

namespace desmine::robust {

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void handle_signal(int) { g_interrupted = 1; }

}  // namespace

void install_signal_flag() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

bool interrupted() { return g_interrupted != 0; }

void request_interrupt() { g_interrupted = 1; }

void reset_interrupted() { g_interrupted = 0; }

}  // namespace desmine::robust
