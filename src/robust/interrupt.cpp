#include "robust/interrupt.h"

#include <csignal>

namespace desmine::robust {

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
volatile std::sig_atomic_t g_reload = 0;

void handle_signal(int) { g_interrupted = 1; }

void handle_reload(int) { g_reload = 1; }

}  // namespace

void install_signal_flag() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

bool interrupted() { return g_interrupted != 0; }

void request_interrupt() { g_interrupted = 1; }

void reset_interrupted() { g_interrupted = 0; }

void install_reload_signal() {
#ifdef SIGHUP
  std::signal(SIGHUP, handle_reload);
#endif
}

bool reload_requested() { return g_reload != 0; }

void request_reload() { g_reload = 1; }

void clear_reload_request() { g_reload = 0; }

}  // namespace desmine::robust
