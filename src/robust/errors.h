// Typed errors raised by the fault-tolerance layer.
//
// The miner's per-pair isolation distinguishes these from generic runtime
// failures: a DeadlineExceeded pair is not retried (retrying the same step
// budget would time out again), and Interrupted aborts the whole run after
// the checkpoint journal has been flushed.
#pragma once

#include "util/error.h"

namespace desmine::robust {

/// A wall-clock deadline (per-pair training budget) elapsed.
class DeadlineExceeded : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// Mining was aborted deliberately — SIGINT, an armed kAbort fault, or a
/// caller-supplied should_abort() hook. Completed pairs are already
/// journaled; rerun with resume to continue where the run stopped.
class Interrupted : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

}  // namespace desmine::robust
