// Typed errors raised by the fault-tolerance layer.
//
// The miner's per-pair isolation distinguishes these from generic runtime
// failures: a DeadlineExceeded pair is not retried (retrying the same step
// budget would time out again), and Interrupted aborts the whole run after
// the checkpoint journal has been flushed. The detection-side errors
// (MissingSensor, MisalignedCorpus) carry the offending sensor so a
// degraded-mode caller can route the fault to the health tracker instead
// of aborting the stream.
#pragma once

#include <cstddef>
#include <string>

#include "util/error.h"

namespace desmine::robust {

/// A wall-clock deadline (per-pair training budget) elapsed.
class DeadlineExceeded : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// Mining was aborted deliberately — SIGINT, an armed kAbort fault, or a
/// caller-supplied should_abort() hook. Completed pairs are already
/// journaled; rerun with resume to continue where the run stopped.
class Interrupted : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// A kept sensor delivered no value for a tick while the detector runs in
/// strict mode. Degraded-mode detection routes the same condition to the
/// sensor-health tracker instead of throwing.
class MissingSensor : public RuntimeError {
 public:
  MissingSensor(std::string sensor, std::size_t tick)
      : RuntimeError("sensor '" + sensor + "' delivered no value at tick " +
                     std::to_string(tick)),
        sensor_(std::move(sensor)),
        tick_(tick) {}

  const std::string& sensor() const { return sensor_; }
  std::size_t tick() const { return tick_; }

 private:
  std::string sensor_;
  std::size_t tick_;
};

/// Test corpora handed to the detector are not aligned: the named sensor's
/// corpus has a different window count than the first sensor's. Raised up
/// front (with the offender named) instead of surfacing as undefined
/// behavior deep inside edge scoring.
class MisalignedCorpus : public PreconditionError {
 public:
  MisalignedCorpus(std::string sensor, std::size_t expected, std::size_t got)
      : PreconditionError("test corpus of sensor '" + sensor + "' has " +
                          std::to_string(got) + " windows, expected " +
                          std::to_string(expected) +
                          " (test corpora must be aligned across sensors)"),
        sensor_(std::move(sensor)),
        expected_(expected),
        got_(got) {}

  const std::string& sensor() const { return sensor_; }
  std::size_t expected() const { return expected_; }
  std::size_t got() const { return got_; }

 private:
  std::string sensor_;
  std::size_t expected_;
  std::size_t got_;
};

}  // namespace desmine::robust
