// Deterministic fault injection for robustness tests.
//
// Production code calls fire(point, key) at named injection points (e.g.
// point "miner.pair" with the pair index as key); the injector returns the
// armed action, if any. Faults are armed programmatically (tests) or from
// the DESMINE_FAULTS environment variable (CLI integration tests):
//
//   DESMINE_FAULTS="miner.pair:3=throw;miner.pair:5=diverge*1;miner.pair.done:7=abort"
//
// Spec grammar: point:key=action[*times], separated by ';' or ','. key is a
// non-negative integer, a non-numeric string (an edge name like "3->7" —
// any characters except ':', '=', ',', ';'), or '*' (any key). times bounds
// how often the fault fires (default: unlimited). Actions:
//   throw    raise a RuntimeError at the injection point
//   diverge  poison the pair's learning rate so training trips the
//            divergence guard (a controlled NaN/loss-explosion)
//   abort    request a run abort (simulates a crash after the point)
//   drop     suppress the keyed datum (detection-phase points: at
//            detect.push the keyed sensor's sample goes missing for one
//            tick; at csv.row the keyed row parses as malformed; at
//            serve.ingest the tick is silently lost)
//   delay    stall the injection point for kDelayMillis before it proceeds
//            (injected latency; serve points use it for overload storms)
//
// Detection-phase points (ISSUE 3): "detect.push" keyed by kept-sensor
// index (fired every tick), "csv.row" keyed by 1-based CSV row number,
// "model.load" keyed 0 (artifact loads). E.g. dropping sensor 2 for 40
// consecutive ticks mid-stream: DESMINE_FAULTS="detect.push:2=drop*40".
//
// Serving-phase points (ISSUE 7): "serve.decode" keyed by edge name
// "src->dst" (fired once per scored batch), "serve.model.load" keyed 0
// (hot-reload artifact loads), "serve.ingest" keyed by session id (fired
// every tick). E.g. poisoning one edge model until the circuit breaker
// quarantines it: DESMINE_FAULTS="serve.decode:3->7=throw".
//
// Keys are canonicalized to strings internally: integer-keyed arming and
// firing use the decimal rendering, so "p:3=throw" matches fire("p", 3)
// and fire("p", "3") alike.
//
// The injector is process-wide and disabled (zero overhead beyond one
// relaxed atomic load) when nothing is armed.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace desmine::robust {

enum class FaultAction {
  kNone,
  kThrow,
  kDiverge,
  kAbort,
  kDrop,
  kDelay,
};

/// How long a kDelay action stalls its injection point.
inline constexpr int kDelayMillis = 25;

struct FaultSpec {
  std::string point;
  std::string key;       ///< canonical key; ignored when any_key
  bool any_key = false;  ///< matches every key of the point
  FaultAction action = FaultAction::kNone;
  std::size_t remaining = 0;  ///< fires left; SIZE_MAX = unlimited
};

class FaultInjector {
 public:
  /// The process-wide injector. On first use it arms any faults described
  /// by the DESMINE_FAULTS environment variable.
  static FaultInjector& instance();

  /// Arm one fault on an integer key (-1 = any key). `times` bounds how
  /// often it fires (SIZE_MAX = always).
  void arm(std::string point, std::int64_t key, FaultAction action,
           std::size_t times = std::size_t(-1));

  /// Arm one fault on a string key ("*" = any key, e.g. an edge name like
  /// "3->7"). The key must be non-empty.
  void arm(std::string point, std::string key, FaultAction action,
           std::size_t times = std::size_t(-1));

  /// Arm faults from a spec string (the DESMINE_FAULTS grammar above).
  /// Returns the number of faults armed; throws PreconditionError on a
  /// malformed spec.
  std::size_t arm_from_spec(std::string_view spec);

  /// Poll an injection point. Returns the armed action for (point, key) and
  /// consumes one fire, or kNone. Thread-safe.
  FaultAction fire(std::string_view point, std::int64_t key);
  FaultAction fire(std::string_view point, std::string_view key);

  bool any_armed() const {
    return armed_.load(std::memory_order_relaxed) != 0;
  }

  /// Disarm everything (tests).
  void clear();

 private:
  FaultInjector();

  void arm_any(std::string point, FaultAction action, std::size_t times);

  mutable std::mutex mutex_;
  std::vector<FaultSpec> specs_;
  std::atomic<std::size_t> armed_{0};
};

/// Shorthand for FaultInjector::instance().fire(point, key).
inline FaultAction fire_fault(std::string_view point, std::int64_t key) {
  return FaultInjector::instance().fire(point, key);
}
inline FaultAction fire_fault(std::string_view point, std::string_view key) {
  return FaultInjector::instance().fire(point, key);
}

}  // namespace desmine::robust
