// Append-only JSON-lines checkpoint journal for relationship mining.
//
// Algorithm 1 trains N(N-1) independent pair models over hours; a crash must
// not lose finished pairs. The miner appends one flat JSON object per
// finished pair (success or permanent failure) and fsyncs after each record,
// so the journal is durable up to the last completed pair. Trained models
// are stored beside the journal in `<journal>.models/pair_<index>.bin`
// (crash-safe CRC-trailed artifacts, see io::serialize).
//
// On resume the reader is deliberately tolerant: a truncated trailing line
// (the record being written when the process died) is skipped, not fatal.
// BLEU scores are persisted both human-readably and as IEEE-754 bit
// patterns ("bleu_bits") so a resumed graph is bit-identical to an
// uninterrupted run.
//
// The journal header carries a fingerprint of the miner configuration and
// sensor set; resuming against a checkpoint written under a different
// configuration throws instead of mixing incomparable BLEU scores.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace desmine::robust {

/// One journaled pair outcome.
struct PairRecord {
  std::size_t pair_index = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  bool ok = false;
  double bleu = 0.0;
  double runtime_s = 0.0;
  std::size_t steps = 0;
  std::size_t attempts = 1;   ///< training attempts made (1 = no retries)
  std::string error;          ///< failure reason when !ok
  std::string model_file;     ///< sidecar model artifact when ok
};

/// Parsed journal contents.
struct CheckpointState {
  bool exists = false;        ///< the journal file was present
  bool has_header = false;
  std::uint32_t fingerprint = 0;
  std::size_t pair_count = 0;  ///< total pairs declared by the header
  std::map<std::size_t, PairRecord> completed;  ///< ok records by pair index
  std::size_t failed_records = 0;  ///< permanent-failure records seen
  std::size_t skipped_lines = 0;   ///< malformed/truncated lines ignored
};

/// Read a journal; missing file yields {exists = false}. Never throws on
/// malformed content — bad lines are counted in skipped_lines.
CheckpointState load_checkpoint(const std::string& path);

/// Sidecar locations for per-pair model artifacts.
std::string checkpoint_model_dir(const std::string& journal_path);
std::string checkpoint_model_file(const std::string& journal_path,
                                  std::size_t pair_index);

/// Append-only journal writer. Thread-safe; every append is flushed and
/// fsynced before returning so completed pairs survive a crash.
class CheckpointJournal {
 public:
  /// Opens `path` for appending (resume) or truncates it (fresh run).
  /// Throws RuntimeError if the file cannot be opened.
  CheckpointJournal(const std::string& path, bool append);
  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  void write_header(std::uint32_t fingerprint, std::size_t pair_count);
  void append(const PairRecord& record);

  const std::string& path() const { return path_; }

 private:
  void write_line(const std::string& line);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

/// Parse one flat (non-nested) JSON object into string fields; string
/// values are unescaped, numbers/bools kept as their literal text. Returns
/// false on malformed input. Exposed for tests.
bool parse_flat_json(std::string_view line,
                     std::map<std::string, std::string>& out);

}  // namespace desmine::robust
