// Wall-clock deadline guard for long-running work (per-pair NMT training).
//
// A Deadline is armed with a budget in seconds and polled from cheap
// positions (the trainer's per-step hook); check() turns expiry into a typed
// DeadlineExceeded so the miner can fail the pair without retrying it.
#pragma once

#include <chrono>
#include <string>

#include "robust/errors.h"

namespace desmine::robust {

class Deadline {
 public:
  /// Budget in seconds; <= 0 means unlimited (never expires).
  explicit Deadline(double seconds)
      : limited_(seconds > 0.0),
        start_(std::chrono::steady_clock::now()),
        budget_s_(seconds) {}

  bool expired() const {
    return limited_ && elapsed_s() > budget_s_;
  }

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double budget_s() const { return budget_s_; }

  /// Throws DeadlineExceeded naming `what` when the budget has elapsed.
  void check(const std::string& what) const {
    if (expired()) {
      throw DeadlineExceeded(what + " exceeded its deadline of " +
                             std::to_string(budget_s_) + "s");
    }
  }

 private:
  bool limited_;
  std::chrono::steady_clock::time_point start_;
  double budget_s_;
};

}  // namespace desmine::robust
