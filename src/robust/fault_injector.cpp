#include "robust/fault_injector.h"

#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace desmine::robust {

namespace {

FaultAction parse_action(std::string_view name) {
  if (name == "throw") return FaultAction::kThrow;
  if (name == "diverge") return FaultAction::kDiverge;
  if (name == "abort") return FaultAction::kAbort;
  if (name == "drop") return FaultAction::kDrop;
  if (name == "delay") return FaultAction::kDelay;
  throw PreconditionError("unknown fault action '" + std::string(name) + "'");
}

bool all_digits(const std::string& text) {
  return !text.empty() &&
         text.find_first_not_of("0123456789") == std::string::npos;
}

std::uint64_t parse_number(const std::string& text, const std::string& what) {
  if (!all_digits(text)) {
    throw PreconditionError("fault spec " + what + " '" + text +
                            "' is not a non-negative integer");
  }
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    throw PreconditionError("fault spec " + what + " '" + text +
                            "' is out of range");
  }
}

}  // namespace

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("DESMINE_FAULTS"); env && *env) {
    arm_from_spec(env);
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string point, std::int64_t key,
                        FaultAction action, std::size_t times) {
  if (key == -1) {
    arm_any(std::move(point), action, times);
    return;
  }
  DESMINE_EXPECTS(key >= 0, "integer fault keys must be >= 0 (or -1 = any)");
  arm(std::move(point), std::to_string(key), action, times);
}

void FaultInjector::arm(std::string point, std::string key,
                        FaultAction action, std::size_t times) {
  if (key == "*") {
    arm_any(std::move(point), action, times);
    return;
  }
  DESMINE_EXPECTS(!key.empty(), "fault key must be non-empty");
  DESMINE_EXPECTS(action != FaultAction::kNone, "cannot arm a no-op fault");
  DESMINE_EXPECTS(times > 0, "fault must fire at least once");
  std::lock_guard lock(mutex_);
  specs_.push_back(FaultSpec{std::move(point), std::move(key), false, action,
                             times});
  armed_.store(specs_.size(), std::memory_order_relaxed);
}

void FaultInjector::arm_any(std::string point, FaultAction action,
                            std::size_t times) {
  DESMINE_EXPECTS(action != FaultAction::kNone, "cannot arm a no-op fault");
  DESMINE_EXPECTS(times > 0, "fault must fire at least once");
  std::lock_guard lock(mutex_);
  specs_.push_back(FaultSpec{std::move(point), "", true, action, times});
  armed_.store(specs_.size(), std::memory_order_relaxed);
}

std::size_t FaultInjector::arm_from_spec(std::string_view spec) {
  std::size_t count = 0;
  std::string normalized(spec);
  for (char& c : normalized) {
    if (c == ';') c = ',';
  }
  for (const std::string& entry : util::split(normalized, ',')) {
    const std::string trimmed = util::trim(entry);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    const auto colon = trimmed.rfind(':', eq);
    if (eq == std::string::npos || colon == std::string::npos || colon == 0 ||
        colon + 1 == eq) {
      throw PreconditionError("malformed fault spec '" + trimmed +
                              "' (want point:key=action[*times])");
    }
    const std::string point = trimmed.substr(0, colon);
    std::string key_str = trimmed.substr(colon + 1, eq - colon - 1);
    std::string action_str = trimmed.substr(eq + 1);
    std::size_t times = std::size_t(-1);
    if (const auto star = action_str.find('*'); star != std::string::npos) {
      times = static_cast<std::size_t>(
          parse_number(action_str.substr(star + 1), "times"));
      action_str = action_str.substr(0, star);
    }
    // Numeric keys are canonicalized ("03" arms the same key fire("p", 3)
    // polls); everything else is a verbatim string key.
    if (all_digits(key_str)) {
      key_str = std::to_string(parse_number(key_str, "key"));
    }
    if (key_str == "*") {
      arm_any(point, parse_action(action_str), times);
    } else {
      arm(point, key_str, parse_action(action_str), times);
    }
    ++count;
  }
  return count;
}

FaultAction FaultInjector::fire(std::string_view point, std::int64_t key) {
  if (!any_armed()) return FaultAction::kNone;
  const std::string canonical = std::to_string(key);
  return fire(point, std::string_view(canonical));
}

FaultAction FaultInjector::fire(std::string_view point, std::string_view key) {
  if (!any_armed()) return FaultAction::kNone;
  std::lock_guard lock(mutex_);
  for (auto it = specs_.begin(); it != specs_.end(); ++it) {
    if (it->point != point) continue;
    if (!it->any_key && it->key != key) continue;
    const FaultAction action = it->action;
    if (it->remaining != std::size_t(-1) && --it->remaining == 0) {
      specs_.erase(it);
      armed_.store(specs_.size(), std::memory_order_relaxed);
    }
    return action;
  }
  return FaultAction::kNone;
}

void FaultInjector::clear() {
  std::lock_guard lock(mutex_);
  specs_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

}  // namespace desmine::robust
